package cache

import (
	"fmt"
	"sort"

	"darwin/internal/bloom"
)

// This file is the cache engine's checkpoint/restore seam: every piece of
// per-shard learned and resident state — HOC/DC contents in eviction order,
// the one-hit-wonder Bloom filter, the frequency tracker, metrics, and the
// deployed expert — exports to a plain serialisable struct and restores with
// full validation before any live field is mutated (never half-apply).

// TrackerState is the serialisable form of a FrequencyTracker. Kind selects
// the variant; exact trackers use the parallel IDs/Counts/LastSeen arrays
// (sorted by id), approx trackers the counting-filter image plus the
// IDs/LastSeen last-seen table.
type TrackerState struct {
	Kind     string               `json:"kind"`
	IDs      []uint64             `json:"ids,omitempty"`
	Counts   []int                `json:"counts,omitempty"`
	LastSeen []int64              `json:"last_seen,omitempty"`
	Counting *bloom.CountingState `json:"counting,omitempty"`
	MaxLast  int                  `json:"max_last,omitempty"`
}

// Tracker kinds.
const (
	trackerExact  = "exact"
	trackerApprox = "approx"
)

// State snapshots the exact tracker, sorted by id for deterministic output.
func (t *ExactTracker) State() *TrackerState {
	st := &TrackerState{
		Kind:     trackerExact,
		IDs:      make([]uint64, 0, len(t.objects)),
		Counts:   make([]int, 0, len(t.objects)),
		LastSeen: make([]int64, 0, len(t.objects)),
	}
	ids := make([]uint64, 0, len(t.objects))
	for id := range t.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := t.objects[id]
		st.IDs = append(st.IDs, id)
		st.Counts = append(st.Counts, e.count)
		st.LastSeen = append(st.LastSeen, e.lastSeen)
	}
	return st
}

// State snapshots the approx tracker: the counting-filter image plus the
// bounded last-seen table, sorted by id.
func (t *ApproxTracker) State() *TrackerState {
	st := &TrackerState{Kind: trackerApprox, MaxLast: t.maxLast}
	cs := t.counting.State()
	st.Counting = &cs
	ids := make([]uint64, 0, len(t.lastSeen))
	for id := range t.lastSeen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.IDs = make([]uint64, 0, len(ids))
	st.LastSeen = make([]int64, 0, len(ids))
	for _, id := range ids {
		st.IDs = append(st.IDs, id)
		st.LastSeen = append(st.LastSeen, t.lastSeen[id])
	}
	return st
}

// trackerFromState rebuilds a FrequencyTracker, validating the arrays before
// constructing anything.
func trackerFromState(st *TrackerState) (FrequencyTracker, error) {
	if st == nil {
		return nil, fmt.Errorf("cache: nil tracker state")
	}
	switch st.Kind {
	case trackerExact:
		if len(st.IDs) != len(st.Counts) || len(st.IDs) != len(st.LastSeen) {
			return nil, fmt.Errorf("cache: exact tracker state arrays disagree (%d/%d/%d)",
				len(st.IDs), len(st.Counts), len(st.LastSeen))
		}
		t := NewExactTracker()
		for i, id := range st.IDs {
			if st.Counts[i] <= 0 {
				return nil, fmt.Errorf("cache: exact tracker state has count %d for id %d", st.Counts[i], id)
			}
			t.objects[id] = exactEntry{count: st.Counts[i], lastSeen: st.LastSeen[i]}
		}
		return t, nil
	case trackerApprox:
		if st.Counting == nil {
			return nil, fmt.Errorf("cache: approx tracker state missing counting filter")
		}
		if len(st.IDs) != len(st.LastSeen) {
			return nil, fmt.Errorf("cache: approx tracker state arrays disagree (%d/%d)", len(st.IDs), len(st.LastSeen))
		}
		if st.MaxLast <= 0 || len(st.IDs) > st.MaxLast {
			return nil, fmt.Errorf("cache: approx tracker state has %d last-seen entries for bound %d", len(st.IDs), st.MaxLast)
		}
		counting, err := bloom.CountingFromState(*st.Counting)
		if err != nil {
			return nil, err
		}
		t := &ApproxTracker{
			counting: counting,
			lastSeen: make(map[uint64]int64, st.MaxLast),
			maxLast:  st.MaxLast,
		}
		for i, id := range st.IDs {
			t.lastSeen[id] = st.LastSeen[i]
		}
		return t, nil
	}
	return nil, fmt.Errorf("cache: unknown tracker kind %q", st.Kind)
}

// HierarchyState is the serialisable form of one Hierarchy (one shard). HOC
// and DC list resident objects in the eviction policy's victim-first order,
// so re-inserting them in order reproduces the protection order.
type HierarchyState struct {
	HOCBytes    int64             `json:"hoc_bytes"`
	DCBytes     int64             `json:"dc_bytes"`
	HOCEviction string            `json:"hoc_eviction,omitempty"`
	DCEviction  string            `json:"dc_eviction,omitempty"`
	HOC         []ResidentObject  `json:"hoc"`
	DC          []ResidentObject  `json:"dc"`
	Seen        bloom.FilterState `json:"seen"`
	Tracker     *TrackerState     `json:"tracker"`
	Expert      Expert            `json:"expert"`
	ReqIdx      int64             `json:"req_idx"`
	Metrics     Metrics           `json:"metrics"`
	Switches    int64             `json:"expert_switches"`
}

// State snapshots the hierarchy for checkpointing. It fails only when the
// installed frequency tracker is a custom type the checkpoint format cannot
// represent.
func (h *Hierarchy) State() (*HierarchyState, error) {
	var ts *TrackerState
	switch t := h.tracker.(type) {
	case *ExactTracker:
		ts = t.State()
	case *ApproxTracker:
		ts = t.State()
	default:
		return nil, fmt.Errorf("cache: tracker %T is not checkpointable", h.tracker)
	}
	return &HierarchyState{
		HOCBytes:    h.hocCap,
		DCBytes:     h.dcCap,
		HOCEviction: h.hocName,
		DCEviction:  h.dcName,
		HOC:         h.hoc.Entries(),
		DC:          h.dc.Entries(),
		Seen:        h.seen.State(),
		Tracker:     ts,
		Expert:      h.expert,
		ReqIdx:      h.reqIdx,
		Metrics:     h.m,
		Switches:    h.expertSwitches,
	}, nil
}

// restoredParts holds a fully validated restore, built before any live field
// is touched so a bad snapshot can never half-apply.
type restoredParts struct {
	hoc, dc Eviction
	seen    *bloom.Filter
	tracker FrequencyTracker
}

// prepareRestoreState validates st against this hierarchy's configuration
// and builds the replacement structures without mutating anything.
func (h *Hierarchy) prepareRestoreState(st *HierarchyState) (restoredParts, error) {
	var parts restoredParts
	if st == nil {
		return parts, fmt.Errorf("cache: nil hierarchy state")
	}
	if st.HOCBytes != h.hocCap || st.DCBytes != h.dcCap {
		return parts, fmt.Errorf("cache: snapshot capacities (hoc=%d dc=%d) do not match engine (hoc=%d dc=%d)",
			st.HOCBytes, st.DCBytes, h.hocCap, h.dcCap)
	}
	if st.HOCEviction != h.hocName || st.DCEviction != h.dcName {
		return parts, fmt.Errorf("cache: snapshot eviction policies (%q/%q) do not match engine (%q/%q)",
			st.HOCEviction, st.DCEviction, h.hocName, h.dcName)
	}
	hoc, err := rebuildLevel(h.hocName, h.hocCap, st.HOC)
	if err != nil {
		return parts, fmt.Errorf("cache: restoring HOC: %w", err)
	}
	dc, err := rebuildLevel(h.dcName, h.dcCap, st.DC)
	if err != nil {
		return parts, fmt.Errorf("cache: restoring DC: %w", err)
	}
	seen, err := bloom.FilterFromState(st.Seen)
	if err != nil {
		return parts, err
	}
	tracker, err := trackerFromState(st.Tracker)
	if err != nil {
		return parts, err
	}
	parts = restoredParts{hoc: hoc, dc: dc, seen: seen, tracker: tracker}
	return parts, nil
}

// commitRestoreState installs a prepared restore.
func (h *Hierarchy) commitRestoreState(st *HierarchyState, parts restoredParts) {
	h.hoc = parts.hoc
	h.dc = parts.dc
	h.seen = parts.seen
	h.tracker = parts.tracker
	h.expert = st.Expert
	h.reqIdx = st.ReqIdx
	h.m = st.Metrics
	h.expertSwitches = st.Switches
}

// RestoreState replaces the hierarchy's resident and learned state with a
// snapshot. The snapshot is validated in full first; on error the hierarchy
// is unchanged. The DC journal is deliberately not written during restore —
// after a crash the disk log itself is the fresher source of DC truth and is
// reconciled separately via RestoreDC.
func (h *Hierarchy) RestoreState(st *HierarchyState) error {
	parts, err := h.prepareRestoreState(st)
	if err != nil {
		return err
	}
	h.commitRestoreState(st, parts)
	return nil
}

// rebuildLevel reconstructs one eviction policy from a victim-first entry
// list, rejecting malformed entries and capacity overflow.
func rebuildLevel(name string, capBytes int64, entries []ResidentObject) (Eviction, error) {
	ev, err := NewEvictionWithCapacity(name, capBytes)
	if err != nil {
		return nil, err
	}
	var total int64
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if e.Size <= 0 {
			return nil, fmt.Errorf("object %d has size %d", e.ID, e.Size)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("object %d appears twice", e.ID)
		}
		seen[e.ID] = true
		total += e.Size
		if total > capBytes {
			return nil, fmt.Errorf("entries total %d bytes, capacity %d", total, capBytes)
		}
		ev.Insert(e.ID, e.Size)
	}
	return ev, nil
}

// RestoreDC rebuilds only the DC level from a journal's live set, given
// oldest-first: when the set no longer fits (the capacity shrank between
// runs), the oldest entries are dropped and the most recently admitted
// objects are kept. Used to reconcile the DC against the disk log after a
// checkpoint restore — the log is always at least as fresh as the
// checkpoint. No metrics are charged and nothing is journaled.
func (h *Hierarchy) RestoreDC(entries []ResidentObject) error {
	dc, err := NewEvictionWithCapacity(h.dcName, h.dcCap)
	if err != nil {
		return err
	}
	// Walk backwards to find the newest suffix that fits.
	var total int64
	start := len(entries)
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Size <= 0 {
			return fmt.Errorf("cache: journal entry %d has size %d", entries[i].ID, entries[i].Size)
		}
		if total+entries[i].Size > h.dcCap {
			break
		}
		total += entries[i].Size
		start = i
	}
	for _, e := range entries[start:] {
		dc.Insert(e.ID, e.Size)
	}
	h.dc = dc
	return nil
}

// MergeDC folds another node's resident set into this hierarchy's DC — the
// drain-handoff merge: each donor entry not already resident (either level)
// is admitted through the normal DC eviction path, evicting local victims
// when capacity demands it, exactly as if the inherited traffic had already
// re-fetched it. Entries are validated in full before anything is mutated.
// Given in victim-first order, donor protection order is preserved. Admits
// are journaled (the DC log must reflect DC contents) but charge no metrics:
// a handoff is a transfer, not traffic. Returns how many entries were
// admitted.
func (h *Hierarchy) MergeDC(entries []ResidentObject) (int, error) {
	for _, e := range entries {
		if e.Size <= 0 {
			return 0, fmt.Errorf("cache: merge entry %d has size %d", e.ID, e.Size)
		}
	}
	added := 0
	for _, e := range entries {
		if e.Size > h.dcCap || h.hoc.Contains(e.ID) || h.dc.Contains(e.ID) {
			continue
		}
		for h.dc.Bytes()+e.Size > h.dcCap {
			vid, _, ok := h.dc.Victim()
			if !ok {
				break
			}
			h.dc.Remove(vid)
			if h.dclog != nil {
				h.dclog.Remove(vid)
			}
		}
		if h.dc.Bytes()+e.Size > h.dcCap {
			continue
		}
		h.dc.Insert(e.ID, e.Size)
		if h.dclog != nil {
			h.dclog.Put(e.ID, e.Size)
		}
		added++
	}
	return added, nil
}

// ShardedState is the serialisable form of a Sharded engine: one
// HierarchyState per shard, in shard order.
type ShardedState struct {
	Shards []*HierarchyState `json:"shards"`
}

// State snapshots every shard. Each shard is captured under its own lock;
// the aggregate is per-shard consistent (the same consistency Metrics
// provides), which is exactly what a restart needs.
func (s *Sharded) State() (*ShardedState, error) {
	st := &ShardedState{Shards: make([]*HierarchyState, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		hs, err := sh.h.State()
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cache: shard %d: %w", i, err)
		}
		st.Shards[i] = hs
	}
	return st, nil
}

// RestoreState restores every shard from a snapshot taken with the same
// shard count. All shard snapshots are validated before any shard is
// mutated, so a corrupt snapshot leaves the engine untouched.
func (s *Sharded) RestoreState(st *ShardedState) error {
	if st == nil {
		return fmt.Errorf("cache: nil sharded state")
	}
	if len(st.Shards) != len(s.shards) {
		return fmt.Errorf("cache: snapshot has %d shards, engine has %d", len(st.Shards), len(s.shards))
	}
	parts := make([]restoredParts, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		p, err := sh.h.prepareRestoreState(st.Shards[i])
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cache: shard %d: %w", i, err)
		}
		parts[i] = p
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.h.commitRestoreState(st.Shards[i], parts[i])
		sh.publishLocked()
		sh.mu.Unlock()
	}
	return nil
}

// MergeDC folds a donor node's resident set into the engine — the
// drain-handoff merge — routing each entry to its owning shard and merging
// under the shard lock. All entries are validated before any shard is
// mutated. Returns the total entries admitted.
func (s *Sharded) MergeDC(entries []ResidentObject) (int, error) {
	for _, e := range entries {
		if e.Size <= 0 {
			return 0, fmt.Errorf("cache: merge entry %d has size %d", e.ID, e.Size)
		}
	}
	perShard := make([][]ResidentObject, len(s.shards))
	for _, e := range entries {
		i := s.route(e.ID)
		perShard[i] = append(perShard[i], e)
	}
	added := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n, err := sh.h.MergeDC(perShard[i])
		if err == nil {
			sh.publishLocked()
		}
		sh.mu.Unlock()
		if err != nil {
			return added, fmt.Errorf("cache: shard %d: %w", i, err)
		}
		added += n
	}
	return added, nil
}

// RestoreDC reconciles every shard's DC against a journal live set (given
// oldest-first), routing each entry to its owning shard.
func (s *Sharded) RestoreDC(entries []ResidentObject) error {
	perShard := make([][]ResidentObject, len(s.shards))
	for _, e := range entries {
		i := s.route(e.ID)
		perShard[i] = append(perShard[i], e)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.h.RestoreDC(perShard[i])
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cache: shard %d: %w", i, err)
		}
	}
	return nil
}
