package cache

import "container/list"

// S4LRU is the segmented LRU policy with four queues used by several
// production CDNs (cf. Huang et al., "An Analysis of Facebook Photo
// Caching"): objects enter the lowest segment; a hit promotes an object one
// segment up; each segment holds at most a quarter of the capacity's
// *object-count budget* worth of recency, with overflowing heads demoted to
// the segment below. Eviction takes the LRU tail of the lowest non-empty
// segment. It is provided as an eviction ablation against the paper's LRU
// default.
type S4LRU struct {
	segs  [4]*list.List // index 0 = lowest; front = most recent
	index map[uint64]*s4Entry
	bytes int64
	// segBytes tracks per-segment resident bytes; each segment is balanced
	// to at most 1/4 of total bytes on insertion/promotion.
	segBytes [4]int64
	capHint  int64
}

type s4Entry struct {
	id   uint64
	size int64
	seg  int
	el   *list.Element
}

// NewS4LRU returns an empty segmented-LRU policy. capHint bounds per-segment
// bytes to capHint/4; a zero hint disables segment balancing (segments then
// only bound each other through demotion on eviction pressure).
func NewS4LRU(capHint int64) *S4LRU {
	s := &S4LRU{index: make(map[uint64]*s4Entry), capHint: capHint}
	for i := range s.segs {
		s.segs[i] = list.New()
	}
	return s
}

// Insert implements Eviction: new objects enter segment 0.
func (s *S4LRU) Insert(id uint64, size int64) {
	if e, ok := s.index[id]; ok {
		s.bytes += size - e.size
		s.segBytes[e.seg] += size - e.size
		e.size = size
		s.segs[e.seg].MoveToFront(e.el)
		return
	}
	e := &s4Entry{id: id, size: size, seg: 0}
	e.el = s.segs[0].PushFront(e)
	s.index[id] = e
	s.bytes += size
	s.segBytes[0] += size
	s.balance(0)
}

// Touch implements Eviction: hits promote one segment up.
func (s *S4LRU) Touch(id uint64) {
	e, ok := s.index[id]
	if !ok {
		return
	}
	target := e.seg
	if target < 3 {
		target++
	}
	s.segs[e.seg].Remove(e.el)
	s.segBytes[e.seg] -= e.size
	e.seg = target
	e.el = s.segs[target].PushFront(e)
	s.segBytes[target] += e.size
	s.balance(target)
}

// balance demotes LRU tails of over-budget segments downward.
func (s *S4LRU) balance(from int) {
	if s.capHint <= 0 {
		return
	}
	budget := s.capHint / 4
	for seg := from; seg >= 1; seg-- {
		for s.segBytes[seg] > budget {
			el := s.segs[seg].Back()
			if el == nil {
				break
			}
			e := el.Value.(*s4Entry)
			s.segs[seg].Remove(el)
			s.segBytes[seg] -= e.size
			e.seg = seg - 1
			e.el = s.segs[seg-1].PushFront(e)
			s.segBytes[seg-1] += e.size
		}
	}
}

// Victim implements Eviction: the LRU tail of the lowest non-empty segment.
func (s *S4LRU) Victim() (uint64, int64, bool) {
	for _, seg := range s.segs {
		if el := seg.Back(); el != nil {
			e := el.Value.(*s4Entry)
			return e.id, e.size, true
		}
	}
	return 0, 0, false
}

// Remove implements Eviction.
func (s *S4LRU) Remove(id uint64) {
	e, ok := s.index[id]
	if !ok {
		return
	}
	s.segs[e.seg].Remove(e.el)
	s.segBytes[e.seg] -= e.size
	s.bytes -= e.size
	delete(s.index, id)
}

// Contains implements Eviction.
func (s *S4LRU) Contains(id uint64) bool { _, ok := s.index[id]; return ok }

// Size implements Eviction.
func (s *S4LRU) Size(id uint64) int64 {
	if e, ok := s.index[id]; ok {
		return e.size
	}
	return 0
}

// Len implements Eviction.
func (s *S4LRU) Len() int { return len(s.index) }

// Bytes implements Eviction.
func (s *S4LRU) Bytes() int64 { return s.bytes }

// Entries implements Eviction (victim-first: lowest segment tails first).
func (s *S4LRU) Entries() []ResidentObject {
	out := make([]ResidentObject, 0, len(s.index))
	for _, seg := range s.segs {
		for el := seg.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*s4Entry)
			out = append(out, ResidentObject{ID: e.id, Size: e.size})
		}
	}
	return out
}
