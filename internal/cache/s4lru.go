package cache

// S4LRU is the segmented LRU policy with four queues used by several
// production CDNs (cf. Huang et al., "An Analysis of Facebook Photo
// Caching"): objects enter the lowest segment; a hit promotes an object one
// segment up; each segment holds at most a quarter of the capacity's
// *object-count budget* worth of recency, with overflowing heads demoted to
// the segment below. Eviction takes the LRU tail of the lowest non-empty
// segment. It is provided as an eviction ablation against the paper's LRU
// default. All four segments share one slab-backed node arena, so promotion
// and demotion re-link nodes without allocating.
type S4LRU struct {
	arena *nodeArena
	segs  [4]int32 // sentinel per segment; index 0 = lowest; front = most recent
	index map[uint64]s4Pos
	bytes int64
	// segBytes tracks per-segment resident bytes; each segment is balanced
	// to at most 1/4 of total bytes on insertion/promotion.
	segBytes [4]int64
	capHint  int64
}

// s4Pos locates a resident object: its arena node and current segment.
type s4Pos struct {
	node int32
	seg  int8
}

// NewS4LRU returns an empty segmented-LRU policy. capHint bounds per-segment
// bytes to capHint/4; a zero hint disables segment balancing (segments then
// only bound each other through demotion on eviction pressure).
func NewS4LRU(capHint int64) *S4LRU {
	s := &S4LRU{arena: newNodeArena(64), index: make(map[uint64]s4Pos), capHint: capHint}
	for i := range s.segs {
		s.segs[i] = s.arena.newList()
	}
	return s
}

// Insert implements Eviction: new objects enter segment 0.
func (s *S4LRU) Insert(id uint64, size int64) {
	if p, ok := s.index[id]; ok {
		old := s.arena.nodes[p.node].size
		s.bytes += size - old
		s.segBytes[p.seg] += size - old
		s.arena.nodes[p.node].size = size
		s.arena.moveToFront(s.segs[p.seg], p.node)
		return
	}
	i := s.arena.alloc(id, size)
	s.arena.pushFront(s.segs[0], i)
	s.index[id] = s4Pos{node: i, seg: 0}
	s.bytes += size
	s.segBytes[0] += size
	s.balance(0)
}

// Touch implements Eviction: hits promote one segment up.
func (s *S4LRU) Touch(id uint64) { s.Hit(id) }

// Hit implements Eviction.
func (s *S4LRU) Hit(id uint64) bool {
	p, ok := s.index[id]
	if !ok {
		return false
	}
	target := p.seg
	if target < 3 {
		target++
	}
	size := s.arena.nodes[p.node].size
	s.arena.unlink(p.node)
	s.segBytes[p.seg] -= size
	s.arena.pushFront(s.segs[target], p.node)
	s.segBytes[target] += size
	s.index[id] = s4Pos{node: p.node, seg: target}
	s.balance(int(target))
	return true
}

// balance demotes LRU tails of over-budget segments downward.
func (s *S4LRU) balance(from int) {
	if s.capHint <= 0 {
		return
	}
	budget := s.capHint / 4
	for seg := from; seg >= 1; seg-- {
		for s.segBytes[seg] > budget {
			i := s.arena.back(s.segs[seg])
			if i == nilNode {
				break
			}
			id, size := s.arena.nodes[i].id, s.arena.nodes[i].size
			s.arena.unlink(i)
			s.segBytes[seg] -= size
			s.arena.pushFront(s.segs[seg-1], i)
			s.segBytes[seg-1] += size
			s.index[id] = s4Pos{node: i, seg: int8(seg - 1)}
		}
	}
}

// Victim implements Eviction: the LRU tail of the lowest non-empty segment.
func (s *S4LRU) Victim() (uint64, int64, bool) {
	for _, list := range s.segs {
		if i := s.arena.back(list); i != nilNode {
			return s.arena.nodes[i].id, s.arena.nodes[i].size, true
		}
	}
	return 0, 0, false
}

// Remove implements Eviction.
func (s *S4LRU) Remove(id uint64) {
	p, ok := s.index[id]
	if !ok {
		return
	}
	size := s.arena.nodes[p.node].size
	s.arena.unlink(p.node)
	s.arena.release(p.node)
	s.segBytes[p.seg] -= size
	s.bytes -= size
	delete(s.index, id)
}

// Contains implements Eviction.
func (s *S4LRU) Contains(id uint64) bool { _, ok := s.index[id]; return ok }

// Size implements Eviction.
func (s *S4LRU) Size(id uint64) int64 {
	if p, ok := s.index[id]; ok {
		return s.arena.nodes[p.node].size
	}
	return 0
}

// Len implements Eviction.
func (s *S4LRU) Len() int { return len(s.index) }

// Bytes implements Eviction.
func (s *S4LRU) Bytes() int64 { return s.bytes }

// Entries implements Eviction (victim-first: lowest segment tails first).
func (s *S4LRU) Entries() []ResidentObject {
	out := make([]ResidentObject, 0, len(s.index))
	for _, list := range s.segs {
		out = s.arena.appendVictimFirst(list, out)
	}
	return out
}
