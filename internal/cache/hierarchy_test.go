package cache

import (
	"testing"

	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func mustHierarchy(t *testing.T, hocBytes, dcBytes int64, e Expert) *Hierarchy {
	t.Helper()
	h, err := New(Config{HOCBytes: hocBytes, DCBytes: dcBytes, Expert: e})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func req(id uint64, size int64) trace.Request { return trace.Request{ID: id, Size: size} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{HOCBytes: 0, DCBytes: 1}); err == nil {
		t.Error("zero HOC accepted")
	}
	if _, err := New(Config{HOCBytes: 1, DCBytes: -1}); err == nil {
		t.Error("negative DC accepted")
	}
	if _, err := New(Config{HOCBytes: 1, DCBytes: 1, HOCEviction: "bogus"}); err == nil {
		t.Error("bogus eviction accepted")
	}
}

// Path of one object through the hierarchy with f=1:
// req1: miss (bloom records), req2: miss (bloom hit → DC admit, disk write),
// req3: DC hit, count=3 > f=1 → HOC promote, req4: HOC hit.
func TestRequestLifecycle(t *testing.T) {
	h := mustHierarchy(t, 1000, 10000, Expert{Freq: 1, MaxSize: 500})
	results := []Result{Miss, Miss, DCHit, HOCHit}
	for i, want := range results {
		if got := h.Serve(req(7, 100)); got != want {
			t.Fatalf("request %d = %v, want %v", i+1, got, want)
		}
	}
	m := h.Metrics()
	if m.Requests != 4 || m.Misses != 2 || m.DCHits != 1 || m.HOCHits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.DCWrites != 1 || m.DCWriteBytes != 100 {
		t.Fatalf("disk writes = %d/%d, want 1/100", m.DCWrites, m.DCWriteBytes)
	}
	if m.HOCAdmits != 1 {
		t.Fatalf("HOCAdmits = %d", m.HOCAdmits)
	}
}

func TestFrequencyThresholdDelaysPromotion(t *testing.T) {
	// f=3: promote on the 4th request (count > 3), which is the 2nd DC hit.
	h := mustHierarchy(t, 1000, 10000, Expert{Freq: 3, MaxSize: 500})
	want := []Result{Miss, Miss, DCHit, DCHit, HOCHit}
	for i, w := range want {
		if got := h.Serve(req(1, 100)); got != w {
			t.Fatalf("request %d = %v, want %v", i+1, got, w)
		}
	}
}

func TestSizeThresholdBlocksPromotion(t *testing.T) {
	h := mustHierarchy(t, 1000, 10000, Expert{Freq: 1, MaxSize: 50})
	for i := 0; i < 6; i++ {
		if got := h.Serve(req(1, 100)); got == HOCHit {
			t.Fatalf("object above size threshold promoted (request %d)", i+1)
		}
	}
}

func TestRecencyKnob(t *testing.T) {
	e := Expert{Freq: 1, MaxSize: 500, MaxAge: 2}
	// Age = requests since previous request of the same object.
	if !e.Admit(3, 100, 1) {
		t.Error("recent object rejected")
	}
	if e.Admit(3, 100, 5) {
		t.Error("stale object admitted")
	}
	if e.Admit(3, 100, -1) {
		t.Error("never-seen object admitted under recency knob")
	}
}

func TestHOCEvictsLRUUnderPressure(t *testing.T) {
	h := mustHierarchy(t, 250, 10000, Expert{Freq: 0, MaxSize: 200})
	warm := func(id uint64) {
		h.Serve(req(id, 100)) // miss
		h.Serve(req(id, 100)) // miss → DC
		h.Serve(req(id, 100)) // DC hit → HOC (f=0: admit on any count>0)
	}
	warm(1)
	warm(2) // HOC: {1,2} = 200 bytes
	if h.HOCLen() != 2 {
		t.Fatalf("HOCLen = %d, want 2", h.HOCLen())
	}
	h.Serve(req(1, 100)) // HOC hit, 1 now MRU
	warm(3)              // needs 100 bytes → evicts LRU = 2
	if !h.HOCContains(1) || h.HOCContains(2) || !h.HOCContains(3) {
		t.Fatalf("HOC contents wrong: 1=%v 2=%v 3=%v",
			h.HOCContains(1), h.HOCContains(2), h.HOCContains(3))
	}
	if h.HOCBytes() > 250 {
		t.Fatalf("HOC over capacity: %d", h.HOCBytes())
	}
}

func TestObjectLargerThanHOCNeverAdmitted(t *testing.T) {
	h := mustHierarchy(t, 100, 10000, Expert{Freq: 0, MaxSize: 1 << 20})
	for i := 0; i < 5; i++ {
		h.Serve(req(1, 500))
	}
	if h.HOCLen() != 0 {
		t.Fatal("object larger than HOC capacity was admitted")
	}
	if m := h.Metrics(); m.DCHits == 0 {
		t.Fatal("object should still be served from DC")
	}
}

func TestObjectLargerThanDCNeverAdmitted(t *testing.T) {
	h := mustHierarchy(t, 100, 400, Expert{Freq: 0, MaxSize: 1 << 20})
	for i := 0; i < 4; i++ {
		if got := h.Serve(req(1, 500)); got != Miss {
			t.Fatalf("oversized object served from cache: %v", got)
		}
	}
	if m := h.Metrics(); m.DCWrites != 0 {
		t.Fatal("oversized object written to DC")
	}
}

func TestOneHitWondersNeverWrittenToDisk(t *testing.T) {
	h := mustHierarchy(t, 1000, 100000, Expert{Freq: 1, MaxSize: 500})
	for id := uint64(0); id < 100; id++ {
		h.Serve(req(id, 100))
	}
	if m := h.Metrics(); m.DCWrites != 0 {
		t.Fatalf("one-hit wonders caused %d disk writes", m.DCWrites)
	}
}

func TestSetExpertTakesEffect(t *testing.T) {
	h := mustHierarchy(t, 1000, 10000, Expert{Freq: 100, MaxSize: 500})
	for i := 0; i < 5; i++ {
		h.Serve(req(1, 100))
	}
	if h.HOCLen() != 0 {
		t.Fatal("expert f=100 should not admit")
	}
	h.SetExpert(Expert{Freq: 1, MaxSize: 500})
	h.Serve(req(1, 100)) // DC hit, count=6 > 1 → promote
	if h.HOCLen() != 1 {
		t.Fatal("new expert did not take effect")
	}
	if h.ExpertSwitches() != 1 {
		t.Fatalf("ExpertSwitches = %d", h.ExpertSwitches())
	}
	h.SetExpert(h.Expert()) // no-op swap
	if h.ExpertSwitches() != 1 {
		t.Fatal("no-op SetExpert counted as a switch")
	}
}

func TestResetMetricsKeepsCacheState(t *testing.T) {
	h := mustHierarchy(t, 1000, 10000, Expert{Freq: 1, MaxSize: 500})
	for i := 0; i < 4; i++ {
		h.Serve(req(1, 100))
	}
	h.ResetMetrics()
	if got := h.Serve(req(1, 100)); got != HOCHit {
		t.Fatalf("after reset, request = %v, want HOCHit (cache state kept)", got)
	}
	m := h.Metrics()
	if m.Requests != 1 || m.HOCHits != 1 {
		t.Fatalf("metrics after reset = %+v", m)
	}
}

func TestMetricsDerived(t *testing.T) {
	m := Metrics{Requests: 10, Bytes: 1000, HOCHits: 4, HOCHitBytes: 300, DCHits: 3, DCWriteBytes: 50}
	if m.OHR() != 0.4 {
		t.Fatalf("OHR = %v", m.OHR())
	}
	if m.TotalOHR() != 0.7 {
		t.Fatalf("TotalOHR = %v", m.TotalOHR())
	}
	if m.BMR() != 0.7 {
		t.Fatalf("BMR = %v", m.BMR())
	}
	if m.DiskWritesPerRequest() != 5 {
		t.Fatalf("DiskWritesPerRequest = %v", m.DiskWritesPerRequest())
	}
	var zero Metrics
	if zero.OHR() != 0 || zero.BMR() != 0 || zero.TotalOHR() != 0 || zero.DiskWritesPerRequest() != 0 {
		t.Fatal("zero metrics should yield zero ratios")
	}
}

func TestMetricsSub(t *testing.T) {
	a := Metrics{Requests: 10, HOCHits: 5, Bytes: 100}
	b := Metrics{Requests: 4, HOCHits: 2, Bytes: 40}
	d := a.Sub(b)
	if d.Requests != 6 || d.HOCHits != 3 || d.Bytes != 60 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestCapacityInvariantUnderLoad(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 30000, 21)
	if err != nil {
		t.Fatal(err)
	}
	h := mustHierarchy(t, 64<<10, 1<<20, Expert{Freq: 2, MaxSize: 10 << 10})
	for _, r := range tr.Requests {
		h.Serve(r)
		if h.HOCBytes() > 64<<10 {
			t.Fatalf("HOC over capacity: %d", h.HOCBytes())
		}
		if h.DCBytes() > 1<<20 {
			t.Fatalf("DC over capacity: %d", h.DCBytes())
		}
	}
	if m := h.Metrics(); m.Requests != int64(tr.Len()) {
		t.Fatalf("Requests = %d", m.Requests)
	}
}

func TestResultString(t *testing.T) {
	if HOCHit.String() != "hoc-hit" || DCHit.String() != "dc-hit" || Miss.String() != "miss" {
		t.Fatal("Result strings wrong")
	}
	if Result(9).String() == "" {
		t.Fatal("unknown result should still render")
	}
}

func BenchmarkServe(b *testing.B) {
	tr, err := tracegen.ImageDownloadMix(50, 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := New(Config{HOCBytes: 2 << 20, DCBytes: 200 << 20, Expert: Expert{Freq: 2, MaxSize: 10 << 10}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Serve(tr.Requests[i%tr.Len()])
	}
}
