package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func policies() map[string]func() Eviction {
	return map[string]func() Eviction{
		"lru":  func() Eviction { return NewLRU() },
		"fifo": func() Eviction { return NewFIFO() },
		"lfu":  func() Eviction { return NewLFU() },
	}
}

func TestEvictionCommonBehaviour(t *testing.T) {
	for name, mk := range policies() {
		t.Run(name, func(t *testing.T) {
			p := mk()
			if _, _, ok := p.Victim(); ok {
				t.Fatal("empty policy has a victim")
			}
			p.Insert(1, 100)
			p.Insert(2, 200)
			if p.Len() != 2 || p.Bytes() != 300 {
				t.Fatalf("Len=%d Bytes=%d", p.Len(), p.Bytes())
			}
			if !p.Contains(1) || p.Contains(3) {
				t.Fatal("Contains wrong")
			}
			if p.Size(2) != 200 || p.Size(3) != 0 {
				t.Fatal("Size wrong")
			}
			p.Remove(1)
			if p.Len() != 1 || p.Bytes() != 200 || p.Contains(1) {
				t.Fatal("Remove wrong")
			}
			p.Remove(42) // absent: no-op
			if p.Len() != 1 {
				t.Fatal("Remove of absent id changed state")
			}
		})
	}
}

func TestEvictionReinsertUpdatesSize(t *testing.T) {
	for name, mk := range policies() {
		t.Run(name, func(t *testing.T) {
			p := mk()
			p.Insert(1, 100)
			p.Insert(1, 150)
			if p.Len() != 1 || p.Bytes() != 150 {
				t.Fatalf("Len=%d Bytes=%d after reinsert", p.Len(), p.Bytes())
			}
		})
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Insert(3, 1)
	if id, _, _ := p.Victim(); id != 1 {
		t.Fatalf("victim = %d, want 1", id)
	}
	p.Touch(1) // 2 now oldest
	if id, _, _ := p.Victim(); id != 2 {
		t.Fatalf("victim after touch = %d, want 2", id)
	}
	p.Touch(99) // absent: no-op
	if id, _, _ := p.Victim(); id != 2 {
		t.Fatal("touching absent id changed order")
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	p := NewFIFO()
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Touch(1)
	if id, _, _ := p.Victim(); id != 1 {
		t.Fatalf("victim = %d, want 1 (FIFO ignores hits)", id)
	}
}

func TestLFUOrder(t *testing.T) {
	p := NewLFU()
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Insert(3, 1)
	p.Touch(1)
	p.Touch(1)
	p.Touch(2)
	// hits: 1→2, 2→1, 3→0
	if id, _, _ := p.Victim(); id != 3 {
		t.Fatalf("victim = %d, want 3", id)
	}
	p.Remove(3)
	if id, _, _ := p.Victim(); id != 2 {
		t.Fatalf("victim = %d, want 2", id)
	}
}

func TestLFUTieBreaksByAge(t *testing.T) {
	p := NewLFU()
	p.Insert(5, 1)
	p.Insert(6, 1)
	if id, _, _ := p.Victim(); id != 5 {
		t.Fatalf("victim = %d, want older insert 5", id)
	}
}

// TestEvictionBytesInvariant: Bytes always equals the sum of resident sizes.
func TestEvictionBytesInvariant(t *testing.T) {
	type op struct {
		Kind uint8
		ID   uint8
		Size uint16
	}
	for name, mk := range policies() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []op) bool {
				p := mk()
				ref := map[uint64]int64{}
				for _, o := range ops {
					id := uint64(o.ID % 16)
					switch o.Kind % 3 {
					case 0:
						size := int64(o.Size%1000) + 1
						p.Insert(id, size)
						ref[id] = size
					case 1:
						p.Touch(id)
					case 2:
						p.Remove(id)
						delete(ref, id)
					}
					var want int64
					for _, s := range ref {
						want += s
					}
					if p.Bytes() != want || p.Len() != len(ref) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLFUHeapStress(t *testing.T) {
	p := NewLFU()
	rng := rand.New(rand.NewSource(3))
	live := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		id := uint64(rng.Intn(100))
		switch rng.Intn(4) {
		case 0:
			p.Insert(id, int64(rng.Intn(100)+1))
			live[id] = true
		case 1:
			p.Touch(id)
		case 2:
			p.Remove(id)
			delete(live, id)
		case 3:
			if vid, _, ok := p.Victim(); ok {
				if !live[vid] {
					t.Fatalf("victim %d is not live", vid)
				}
			}
		}
	}
	if p.Len() != len(live) {
		t.Fatalf("Len=%d, want %d", p.Len(), len(live))
	}
}

func TestNewEviction(t *testing.T) {
	for _, name := range []string{"", "lru", "fifo", "lfu"} {
		if _, err := NewEviction(name); err != nil {
			t.Errorf("NewEviction(%q): %v", name, err)
		}
	}
	if _, err := NewEviction("belady"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
