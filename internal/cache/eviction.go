// Package cache implements the two-level CDN cache substrate from the Darwin
// paper (§2.2): a small, fast Hot Object Cache (HOC) in front of a large Disk
// Cache (DC). Admission into the HOC is governed by pluggable experts — the
// (frequency, size[, recency]) threshold tuples Darwin selects among — while
// the DC admits objects on their second request using a Bloom filter to shed
// one-hit wonders. Eviction at both levels defaults to LRU, the policy used
// throughout the paper's evaluation; FIFO and LFU variants are provided for
// ablations.
package cache

import (
	"container/heap"
	"fmt"
)

// Eviction is a byte-capacity-aware victim-selection policy. Implementations
// track resident objects and answer which object should be evicted next.
type Eviction interface {
	// Insert registers a newly admitted object.
	Insert(id uint64, size int64)
	// Touch records a hit on a resident object.
	Touch(id uint64)
	// Hit is the combined Contains+Touch fast path of the request loop: it
	// touches id if resident and reports whether it was resident, with a
	// single index lookup.
	Hit(id uint64) bool
	// Victim returns the next object to evict without removing it.
	// ok is false when the policy tracks no objects.
	Victim() (id uint64, size int64, ok bool)
	// Remove deletes an object (evicted or invalidated) from the policy.
	Remove(id uint64)
	// Contains reports residency.
	Contains(id uint64) bool
	// Size returns the resident size of id, or 0 if absent.
	Size(id uint64) int64
	// Len returns the number of resident objects.
	Len() int
	// Bytes returns the total resident bytes.
	Bytes() int64
	// Entries lists resident objects in eviction order where the policy has
	// one (victim-first for list-based policies; unspecified for heap-based
	// ones). Used to migrate state when the policy is swapped at runtime.
	Entries() []ResidentObject
}

// ResidentObject is one (id, size) pair resident in an eviction policy.
type ResidentObject struct {
	ID   uint64
	Size int64
}

// LRU evicts the least recently used object. Resident objects live in a
// slab-backed intrusive list (see nodeArena), so steady-state churn is
// allocation-free.
type LRU struct {
	arena *nodeArena
	list  int32 // sentinel: front = most recent
	index map[uint64]int32
	bytes int64
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	a := newNodeArena(64)
	return &LRU{arena: a, list: a.newList(), index: make(map[uint64]int32)}
}

// Insert implements Eviction. Inserting an existing id refreshes its recency
// and updates its size.
func (l *LRU) Insert(id uint64, size int64) {
	if i, ok := l.index[id]; ok {
		l.bytes += size - l.arena.nodes[i].size
		l.arena.nodes[i].size = size
		l.arena.moveToFront(l.list, i)
		return
	}
	i := l.arena.alloc(id, size)
	l.arena.pushFront(l.list, i)
	l.index[id] = i
	l.bytes += size
}

// Touch implements Eviction.
func (l *LRU) Touch(id uint64) {
	if i, ok := l.index[id]; ok {
		l.arena.moveToFront(l.list, i)
	}
}

// Hit implements Eviction.
func (l *LRU) Hit(id uint64) bool {
	i, ok := l.index[id]
	if ok {
		l.arena.moveToFront(l.list, i)
	}
	return ok
}

// Victim implements Eviction.
func (l *LRU) Victim() (uint64, int64, bool) {
	i := l.arena.back(l.list)
	if i == nilNode {
		return 0, 0, false
	}
	return l.arena.nodes[i].id, l.arena.nodes[i].size, true
}

// Remove implements Eviction.
func (l *LRU) Remove(id uint64) {
	if i, ok := l.index[id]; ok {
		l.bytes -= l.arena.nodes[i].size
		l.arena.unlink(i)
		l.arena.release(i)
		delete(l.index, id)
	}
}

// Contains implements Eviction.
func (l *LRU) Contains(id uint64) bool { _, ok := l.index[id]; return ok }

// Size implements Eviction.
func (l *LRU) Size(id uint64) int64 {
	if i, ok := l.index[id]; ok {
		return l.arena.nodes[i].size
	}
	return 0
}

// Len implements Eviction.
func (l *LRU) Len() int { return len(l.index) }

// Bytes implements Eviction.
func (l *LRU) Bytes() int64 { return l.bytes }

// Entries implements Eviction (victim-first: LRU tail first).
func (l *LRU) Entries() []ResidentObject {
	return l.arena.appendVictimFirst(l.list, make([]ResidentObject, 0, len(l.index)))
}

// FIFO evicts in insertion order, ignoring hits.
type FIFO struct {
	arena *nodeArena
	list  int32
	index map[uint64]int32
	bytes int64
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	a := newNodeArena(64)
	return &FIFO{arena: a, list: a.newList(), index: make(map[uint64]int32)}
}

// Insert implements Eviction.
func (f *FIFO) Insert(id uint64, size int64) {
	if i, ok := f.index[id]; ok {
		f.bytes += size - f.arena.nodes[i].size
		f.arena.nodes[i].size = size
		return
	}
	i := f.arena.alloc(id, size)
	f.arena.pushFront(f.list, i)
	f.index[id] = i
	f.bytes += size
}

// Touch implements Eviction; FIFO ignores hits.
func (f *FIFO) Touch(uint64) {}

// Hit implements Eviction; FIFO only reports presence.
func (f *FIFO) Hit(id uint64) bool { _, ok := f.index[id]; return ok }

// Victim implements Eviction.
func (f *FIFO) Victim() (uint64, int64, bool) {
	i := f.arena.back(f.list)
	if i == nilNode {
		return 0, 0, false
	}
	return f.arena.nodes[i].id, f.arena.nodes[i].size, true
}

// Remove implements Eviction.
func (f *FIFO) Remove(id uint64) {
	if i, ok := f.index[id]; ok {
		f.bytes -= f.arena.nodes[i].size
		f.arena.unlink(i)
		f.arena.release(i)
		delete(f.index, id)
	}
}

// Contains implements Eviction.
func (f *FIFO) Contains(id uint64) bool { _, ok := f.index[id]; return ok }

// Size implements Eviction.
func (f *FIFO) Size(id uint64) int64 {
	if i, ok := f.index[id]; ok {
		return f.arena.nodes[i].size
	}
	return 0
}

// Len implements Eviction.
func (f *FIFO) Len() int { return len(f.index) }

// Bytes implements Eviction.
func (f *FIFO) Bytes() int64 { return f.bytes }

// Entries implements Eviction (victim-first: oldest insert first).
func (f *FIFO) Entries() []ResidentObject {
	return f.arena.appendVictimFirst(f.list, make([]ResidentObject, 0, len(f.index)))
}

// LFU evicts the least frequently used object, breaking ties by insertion
// order (older first). Implemented as a min-heap keyed by (hits, seq);
// removed entries are pooled and reused so churn does not allocate.
type LFU struct {
	h     lfuHeap
	index map[uint64]*lfuEntry
	pool  []*lfuEntry
	bytes int64
	seq   uint64
}

type lfuEntry struct {
	id    uint64
	size  int64
	hits  uint64
	seq   uint64
	index int // heap index
}

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].hits != h[j].hits {
		return h[i].hits < h[j].hits
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{index: make(map[uint64]*lfuEntry)}
}

// Insert implements Eviction.
func (l *LFU) Insert(id uint64, size int64) {
	if e, ok := l.index[id]; ok {
		l.bytes += size - e.size
		e.size = size
		l.Touch(id)
		return
	}
	l.seq++
	var e *lfuEntry
	if n := len(l.pool); n > 0 {
		e = l.pool[n-1]
		l.pool = l.pool[:n-1]
	} else {
		e = new(lfuEntry)
	}
	*e = lfuEntry{id: id, size: size, seq: l.seq}
	l.index[id] = e
	heap.Push(&l.h, e)
	l.bytes += size
}

// Touch implements Eviction.
func (l *LFU) Touch(id uint64) {
	if e, ok := l.index[id]; ok {
		e.hits++
		heap.Fix(&l.h, e.index)
	}
}

// Hit implements Eviction.
func (l *LFU) Hit(id uint64) bool {
	e, ok := l.index[id]
	if ok {
		e.hits++
		heap.Fix(&l.h, e.index)
	}
	return ok
}

// Victim implements Eviction.
func (l *LFU) Victim() (uint64, int64, bool) {
	if len(l.h) == 0 {
		return 0, 0, false
	}
	return l.h[0].id, l.h[0].size, true
}

// Remove implements Eviction.
func (l *LFU) Remove(id uint64) {
	if e, ok := l.index[id]; ok {
		l.bytes -= e.size
		heap.Remove(&l.h, e.index)
		delete(l.index, id)
		l.pool = append(l.pool, e)
	}
}

// Contains implements Eviction.
func (l *LFU) Contains(id uint64) bool { _, ok := l.index[id]; return ok }

// Size implements Eviction.
func (l *LFU) Size(id uint64) int64 {
	if e, ok := l.index[id]; ok {
		return e.size
	}
	return 0
}

// Len implements Eviction.
func (l *LFU) Len() int { return len(l.h) }

// Bytes implements Eviction.
func (l *LFU) Bytes() int64 { return l.bytes }

// Entries implements Eviction (heap-array order: deterministic for a given
// insertion history, so policy migrations replay identically — map iteration
// here would make SetHOCEviction nondeterministic).
func (l *LFU) Entries() []ResidentObject {
	out := make([]ResidentObject, 0, len(l.h))
	for _, e := range l.h {
		out = append(out, ResidentObject{ID: e.id, Size: e.size})
	}
	return out
}

// NewEviction constructs a policy by name ("lru", "fifo", "lfu", "s4lru",
// "gdsf").
func NewEviction(name string) (Eviction, error) {
	return NewEvictionWithCapacity(name, 0)
}

// NewEvictionWithCapacity constructs a policy by name, providing the cache's
// byte capacity to policies that use it (S4LRU segment balancing).
func NewEvictionWithCapacity(name string, capBytes int64) (Eviction, error) {
	switch name {
	case "lru", "":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "lfu":
		return NewLFU(), nil
	case "s4lru":
		return NewS4LRU(capBytes), nil
	case "gdsf":
		return NewGDSF(), nil
	}
	return nil, fmt.Errorf("cache: unknown eviction policy %q", name)
}
