package cache

import (
	"fmt"
	"runtime"
	"sync"

	"darwin/internal/stripe"
	"darwin/internal/trace"
)

// Mirror-cell counter indexes: the per-shard stripe.Cell publishes the
// shard hierarchy's Metrics fields (plus the expert-switch count) in this
// fixed order so aggregate snapshots are lock-free.
const (
	mcRequests = iota
	mcBytes
	mcHOCHits
	mcHOCHitBytes
	mcDCHits
	mcDCHitBytes
	mcMisses
	mcMissBytes
	mcDCWrites
	mcDCWriteBytes
	mcHOCAdmits
	mcExpertSwitches
	mcWidth
)

// Sharded is the concurrent cache engine: N independent Hierarchy shards,
// each owning 1/N of the capacity, Bloom filter budget, frequency tracking,
// and metrics, with requests routed to their owning shard by an id hash.
// Admission, eviction, and frequency tracking are all keyed on object id, so
// shards never need to coordinate on the request path — two requests for
// objects on different shards proceed fully in parallel, each under its own
// shard mutex.
//
// Sharded with shards=1 is bit-identical to the serial Hierarchy (one shard
// holds the full configuration and every request routes to it); what it adds
// over a bare Hierarchy is the mutex, making it the drop-in "global lock"
// arm of throughput comparisons.
//
// Metrics snapshots are lock-free: each shard publishes its counters into a
// seqlock cell inside the shard critical section, and Metrics sums
// per-shard-consistent snapshots without touching any shard mutex — a
// reader can poll aggregate OHR at any rate without slowing the data plane,
// and never observes a single request's counters torn across fields.
type Sharded struct {
	shards []engineShard
	// mask is len(shards)-1 when the shard count is a power of two, enabling
	// single-AND routing; 0 selects the modulo fallback (or shard 0 when
	// there is only one shard). Immutable after construction.
	mask uint64
}

// engineShard pairs one serial hierarchy with its mutex and its lock-free
// metrics mirror. The struct is padded so neighbouring shards' mutexes do
// not false-share a cache line.
type engineShard struct {
	mu sync.Mutex
	// h is the shard's serial hierarchy — its capacities, Bloom filter,
	// frequency tracker, and metrics cover only this shard's ids; guarded by mu.
	h *Hierarchy
	// mirror publishes h's counters for lock-free snapshots; written only
	// inside Begin/End sections while mu is held, read without any lock.
	mirror *stripe.Cell
	// publishEvery is the counter-publication batch: the mirror is pushed
	// after this many serves instead of on every request, amortizing the
	// seqlock write fences. 1 = publish per request (exact mirrors, the
	// bit-identical replay mode); guarded by mu.
	publishEvery int
	// pending counts serves since the last mirror publication; guarded by mu.
	pending int
	_       [24]byte
}

// NewSharded builds a sharded engine from cfg, splitting the HOC and DC
// capacities and the Bloom filter budget evenly across shards. shards <= 0
// selects 1, which reproduces the serial Hierarchy exactly. A custom
// Tracker instance cannot be split across shards; leave cfg.Tracker nil
// (each shard builds its own exact tracker) when shards > 1.
func NewSharded(cfg Config, shards int) (*Sharded, error) {
	if shards <= 0 {
		shards = 1
	}
	if cfg.Tracker != nil && shards > 1 {
		return nil, fmt.Errorf("cache: a Tracker instance cannot be shared across %d shards; leave Tracker nil", shards)
	}
	if cfg.HOCBytes < int64(shards) || cfg.DCBytes < int64(shards) {
		return nil, fmt.Errorf("cache: capacities (hoc=%d dc=%d) too small to split across %d shards", cfg.HOCBytes, cfg.DCBytes, shards)
	}
	per := cfg
	per.HOCBytes = cfg.HOCBytes / int64(shards)
	per.DCBytes = cfg.DCBytes / int64(shards)
	nb := cfg.BloomObjects
	if nb <= 0 {
		nb = 1 << 20 // the Hierarchy default, split across shards below
	}
	per.BloomObjects = (nb + shards - 1) / shards
	s := &Sharded{shards: make([]engineShard, shards)}
	if shards > 1 && shards&(shards-1) == 0 {
		s.mask = uint64(shards - 1)
	}
	for i := range s.shards {
		h, err := New(per)
		if err != nil {
			return nil, err
		}
		s.shards[i] = engineShard{h: h, mirror: stripe.NewCell(mcWidth), publishEvery: 1}
	}
	return s, nil
}

// AutoShards picks a shard count for the current process when the operator
// does not: 1 under GOMAXPROCS == 1 — the serial engine, since sharding
// there only adds routing and extra-mutex overhead (the 1-CPU regression
// measured in BENCH_2026-08-05) — otherwise GOMAXPROCS rounded up to the
// next power of two so shard routing is a single AND.
func AutoShards() int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the shard count (for report headers and capacity math).
func (s *Sharded) Shards() int { return len(s.shards) }

// SetPublishEvery sets the counter-publication batch size: each shard
// pushes its seqlock metrics mirror after k serves instead of after every
// request, amortizing the publication write fences across the batch. k <= 1
// restores per-request publication (exact mirrors). Any pending deltas are
// published immediately, and lock-free Metrics reads stay coherent — they
// just trail the data plane by at most k-1 requests per shard until the
// next publication or SyncMetrics call.
func (s *Sharded) SetPublishEvery(k int) {
	if k < 1 {
		k = 1
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.publishEvery = k
		sh.publishLocked()
		sh.mu.Unlock()
	}
}

// SyncMetrics publishes every shard's pending batched counters into the
// seqlock mirrors, so the next Metrics aggregate reflects every request
// served before this call. The online controller invokes it at round
// boundaries (reward computation needs exact counters); monitoring readers
// don't need it — their lock-free snapshots are coherent, merely trailing
// by less than one publication batch.
func (s *Sharded) SyncMetrics() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.pending > 0 {
			sh.publishLocked()
		}
		sh.mu.Unlock()
	}
}

// Concurrent marks Sharded safe for concurrent callers (ConcurrentEngine).
func (s *Sharded) Concurrent() bool { return true }

// route maps an object id to its owning shard index. It is on the request
// hot path: pure integer mixing, no allocation, no locks — and a single
// mask when the shard count is a power of two (the AutoShards default).
func (s *Sharded) route(id uint64) int {
	if s.mask != 0 {
		return int(stripe.Mix64(id) & s.mask)
	}
	n := len(s.shards)
	if n == 1 {
		return 0
	}
	return int(stripe.Mix64(id) % uint64(n))
}

// Serve processes one request on the owning shard and publishes the shard's
// updated counters for lock-free aggregation — immediately when
// publishEvery is 1, else once per batch.
func (s *Sharded) Serve(r trace.Request) Result {
	sh := &s.shards[s.route(r.ID)]
	sh.mu.Lock()
	res := sh.h.Serve(r)
	if sh.pending++; sh.pending >= sh.publishEvery {
		sh.publishLocked()
	}
	sh.mu.Unlock()
	return res
}

// Lookup probes residency on the owning shard without mutating any state.
func (s *Sharded) Lookup(id uint64) Result {
	sh := &s.shards[s.route(id)]
	sh.mu.Lock()
	res := sh.h.Lookup(id)
	sh.mu.Unlock()
	return res
}

// publishLocked mirrors the shard hierarchy's counters into the seqlock
// cell as one bulk write section and clears the pending-batch counter. The
// caller holds the shard mutex, making it the cell's sole writer. The whole
// Metrics block is always published together, so every lock-free snapshot —
// batched or not — satisfies the cross-counter invariants
// (hits+misses == requests) at any instant.
func (sh *engineShard) publishLocked() {
	m := sh.h.m
	var v [mcWidth]int64
	v[mcRequests] = m.Requests
	v[mcBytes] = m.Bytes
	v[mcHOCHits] = m.HOCHits
	v[mcHOCHitBytes] = m.HOCHitBytes
	v[mcDCHits] = m.DCHits
	v[mcDCHitBytes] = m.DCHitBytes
	v[mcMisses] = m.Misses
	v[mcMissBytes] = m.MissBytes
	v[mcDCWrites] = m.DCWrites
	v[mcDCWriteBytes] = m.DCWriteBytes
	v[mcHOCAdmits] = m.HOCAdmits
	v[mcExpertSwitches] = sh.h.expertSwitches
	sh.mirror.Store(v[:])
	sh.pending = 0
}

// metricsFromCounters rebuilds a Metrics struct from mirror-cell order.
func metricsFromCounters(v []int64) Metrics {
	return Metrics{
		Requests:     v[mcRequests],
		Bytes:        v[mcBytes],
		HOCHits:      v[mcHOCHits],
		HOCHitBytes:  v[mcHOCHitBytes],
		DCHits:       v[mcDCHits],
		DCHitBytes:   v[mcDCHitBytes],
		Misses:       v[mcMisses],
		MissBytes:    v[mcMissBytes],
		DCWrites:     v[mcDCWrites],
		DCWriteBytes: v[mcDCWriteBytes],
		HOCAdmits:    v[mcHOCAdmits],
	}
}

// Metrics returns the aggregate counters summed across shards. It takes no
// shard mutex: each shard contributes a consistent seqlock snapshot, so a
// single request's counters are never observed torn across fields.
func (s *Sharded) Metrics() Metrics {
	var buf, sum [mcWidth]int64
	for i := range s.shards {
		s.shards[i].mirror.Snapshot(buf[:])
		for j, v := range buf {
			sum[j] += v
		}
	}
	return metricsFromCounters(sum[:])
}

// ShardMetrics returns one shard's counters (a consistent lock-free
// snapshot), for tests and per-partition diagnostics.
func (s *Sharded) ShardMetrics(i int) Metrics {
	var buf [mcWidth]int64
	s.shards[i].mirror.Snapshot(buf[:])
	return metricsFromCounters(buf[:])
}

// ResetMetrics zeroes every shard's counters without disturbing cache
// contents (warm-up exclusion).
func (s *Sharded) ResetMetrics() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.h.ResetMetrics()
		sh.publishLocked()
		sh.mu.Unlock()
	}
}

// SetExpert broadcasts the new admission expert to every shard — the online
// controller calls this at round and epoch boundaries, so the cost of
// walking all shard mutexes is off the request fast path.
func (s *Sharded) SetExpert(e Expert) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.h.SetExpert(e)
		sh.publishLocked()
		sh.mu.Unlock()
	}
}

// Expert returns the currently deployed admission expert (identical on
// every shard; shard 0 is read).
func (s *Sharded) Expert() Expert {
	sh := &s.shards[0]
	sh.mu.Lock()
	e := sh.h.Expert()
	sh.mu.Unlock()
	return e
}

// ExpertSwitches returns how many times the deployed expert changed.
// Broadcasts reach every shard together, so shard 0's count is the logical
// switch count.
func (s *Sharded) ExpertSwitches() int64 {
	var buf [mcWidth]int64
	s.shards[0].mirror.Snapshot(buf[:])
	return buf[mcExpertSwitches]
}

// SetAdmission broadcasts a custom HOC admission predicate (nil restores
// expert-based admission) to every shard.
func (s *Sharded) SetAdmission(f AdmissionFunc) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.h.SetAdmission(f)
		sh.mu.Unlock()
	}
}

// HOCBytes returns resident HOC bytes summed across shards.
func (s *Sharded) HOCBytes() int64 { return s.sumLevel(func(h *Hierarchy) int64 { return h.HOCBytes() }) }

// DCBytes returns resident DC bytes summed across shards.
func (s *Sharded) DCBytes() int64 { return s.sumLevel(func(h *Hierarchy) int64 { return h.DCBytes() }) }

// HOCLen returns the number of HOC-resident objects summed across shards.
func (s *Sharded) HOCLen() int {
	return int(s.sumLevel(func(h *Hierarchy) int64 { return int64(h.HOCLen()) }))
}

// DCLen returns the number of DC-resident objects summed across shards.
func (s *Sharded) DCLen() int {
	return int(s.sumLevel(func(h *Hierarchy) int64 { return int64(h.DCLen()) }))
}

// sumLevel folds a per-shard occupancy reader over every shard under its
// mutex (occupancy reads are off the hot path).
func (s *Sharded) sumLevel(f func(*Hierarchy) int64) int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += f(sh.h)
		sh.mu.Unlock()
	}
	return total
}
