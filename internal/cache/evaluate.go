package cache

import (
	"fmt"

	"darwin/internal/par"
	"darwin/internal/trace"
)

// EvalConfig configures a single-expert trace evaluation.
type EvalConfig struct {
	// HOCBytes and DCBytes size the cache levels.
	HOCBytes, DCBytes int64
	// WarmupFrac is the leading fraction of requests excluded from metrics
	// (the paper excludes the first 1M of every 10M-request trace → 0.1).
	WarmupFrac float64
	// HOCEviction and DCEviction name eviction policies; empty means LRU.
	HOCEviction, DCEviction string
	// DCLog optionally journals DC admissions and evictions to a durable
	// write-ahead log (nil = no journaling; simulation default).
	DCLog DCLog
}

// DefaultEvalConfig returns the scaled simulator defaults (DESIGN.md §5):
// 2 MB HOC, 200 MB DC, 10% warm-up.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		HOCBytes:   2 << 20,
		DCBytes:    200 << 20,
		WarmupFrac: 0.1,
	}
}

// Evaluate plays tr through a fresh Hierarchy running expert e and returns
// the post-warm-up metrics.
func Evaluate(tr *trace.Trace, e Expert, cfg EvalConfig) (Metrics, error) {
	h, err := New(Config{
		HOCBytes:    cfg.HOCBytes,
		DCBytes:     cfg.DCBytes,
		HOCEviction: cfg.HOCEviction,
		DCEviction:  cfg.DCEviction,
		Expert:      e,
	})
	if err != nil {
		return Metrics{}, err
	}
	warm := int(float64(tr.Len()) * cfg.WarmupFrac)
	for i, r := range tr.Requests {
		if i == warm {
			h.ResetMetrics()
		}
		h.Serve(r)
	}
	return h.Metrics(), nil
}

// EvaluateAll evaluates every expert on tr and returns the metrics in expert
// order. Each expert gets an independent, cold hierarchy, so the evaluations
// fan out over the engine's worker pool (par.Default() wide) with results
// bit-identical to the serial loop. Failures are aggregated: the returned
// error names every expert that failed, not just the first.
func EvaluateAll(tr *trace.Trace, experts []Expert, cfg EvalConfig) ([]Metrics, error) {
	return EvaluateAllParallel(tr, experts, cfg, 0)
}

// EvaluateAllParallel is EvaluateAll with an explicit worker-pool width;
// parallelism <= 0 selects par.Default(), 1 runs the reference serial path.
func EvaluateAllParallel(tr *trace.Trace, experts []Expert, cfg EvalConfig, parallelism int) ([]Metrics, error) {
	out := make([]Metrics, len(experts))
	err := par.ForEach(len(experts), parallelism, func(i int) error {
		m, err := Evaluate(tr, experts[i], cfg)
		if err != nil {
			return fmt.Errorf("expert %s: %w", experts[i], err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// JointStats are the pairwise hit/miss co-occurrence counts of two experts on
// the same trace, the ground truth used to train the cross-expert predictors
// M_{i,j} (§4.1): conditional probabilities P(E_j hit | E_i hit) and
// P(E_j hit | E_i miss).
type JointStats struct {
	Requests                int64
	IHitJHit, IHitJMiss     int64
	IMissJHit, IMissJMiss   int64
	IHitRate, JHitRate      float64
	PJHitGivenIHit          float64
	PJHitGivenIMiss         float64
	VarJHitGivenIHit        float64 // p(1-p) under E_i hits
	VarJHitGivenIMiss       float64 // p(1-p) under E_i misses
	SideInformationVariance float64 // σ²_ij = P(i hit)·V_hit + P(i miss)·V_miss
}

// EvaluateJoint runs experts i and j on parallel hierarchies over tr and
// gathers their HOC hit co-occurrence statistics.
func EvaluateJoint(tr *trace.Trace, ei, ej Expert, cfg EvalConfig) (JointStats, error) {
	mk := func(e Expert) (*Hierarchy, error) {
		return New(Config{
			HOCBytes:    cfg.HOCBytes,
			DCBytes:     cfg.DCBytes,
			HOCEviction: cfg.HOCEviction,
			DCEviction:  cfg.DCEviction,
			Expert:      e,
		})
	}
	hi, err := mk(ei)
	if err != nil {
		return JointStats{}, err
	}
	hj, err := mk(ej)
	if err != nil {
		return JointStats{}, err
	}
	warm := int(float64(tr.Len()) * cfg.WarmupFrac)
	var js JointStats
	for i, r := range tr.Requests {
		ri := hi.Serve(r)
		rj := hj.Serve(r)
		if i < warm {
			continue
		}
		js.Requests++
		switch {
		case ri == HOCHit && rj == HOCHit:
			js.IHitJHit++
		case ri == HOCHit:
			js.IHitJMiss++
		case rj == HOCHit:
			js.IMissJHit++
		default:
			js.IMissJMiss++
		}
	}
	js.finalize()
	return js, nil
}

func (js *JointStats) finalize() {
	if js.Requests == 0 {
		return
	}
	iHits := js.IHitJHit + js.IHitJMiss
	iMisses := js.IMissJHit + js.IMissJMiss
	js.IHitRate = float64(iHits) / float64(js.Requests)
	js.JHitRate = float64(js.IHitJHit+js.IMissJHit) / float64(js.Requests)
	if iHits > 0 {
		js.PJHitGivenIHit = float64(js.IHitJHit) / float64(iHits)
	}
	if iMisses > 0 {
		js.PJHitGivenIMiss = float64(js.IMissJHit) / float64(iMisses)
	}
	js.VarJHitGivenIHit = js.PJHitGivenIHit * (1 - js.PJHitGivenIHit)
	js.VarJHitGivenIMiss = js.PJHitGivenIMiss * (1 - js.PJHitGivenIMiss)
	js.SideInformationVariance = js.IHitRate*js.VarJHitGivenIHit +
		(1-js.IHitRate)*js.VarJHitGivenIMiss
}
