package cache_test

import (
	"sync"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/tracegen"
)

// TestShardedOneShardBitIdentical pins the core equivalence contract of the
// Engine seam: a Sharded engine with one shard must reproduce the serial
// Hierarchy bit-for-bit — every per-request Result and every Metrics counter
// — across the full Fig 2 expert grid, including a mid-trace warmup
// ResetMetrics on both arms.
func TestShardedOneShardBitIdentical(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(60, 30_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	warmup := len(tr.Requests) / 5
	for _, e := range cache.DefaultGrid() {
		cfg := cache.Config{
			HOCBytes:    64 << 10,
			DCBytes:     1 << 20,
			Expert:      e,
			HOCEviction: "lru",
			DCEviction:  "lru",
		}
		serial, err := cache.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := cache.NewSharded(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range tr.Requests {
			if i == warmup {
				serial.ResetMetrics()
				sharded.ResetMetrics()
			}
			got, want := sharded.Serve(r), serial.Serve(r)
			if got != want {
				t.Fatalf("expert %v req %d: sharded result %+v, serial %+v", e, i, got, want)
			}
		}
		if got, want := sharded.Metrics(), serial.Metrics(); got != want {
			t.Fatalf("expert %v: sharded metrics %+v, serial %+v", e, got, want)
		}
		if got, want := sharded.ExpertSwitches(), serial.ExpertSwitches(); got != want {
			t.Fatalf("expert %v: sharded switches %d, serial %d", e, got, want)
		}
		if sharded.HOCBytes() != serial.HOCBytes() || sharded.DCBytes() != serial.DCBytes() ||
			sharded.HOCLen() != serial.HOCLen() || sharded.DCLen() != serial.DCLen() {
			t.Fatalf("expert %v: occupancy diverged", e)
		}
	}
}

// TestShardedAggregates checks that with n > 1 shards the aggregate equals
// the sum of the per-shard snapshots, every request lands on exactly one
// shard, and expert broadcasts reach all shards.
func TestShardedAggregates(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	s, err := cache.NewSharded(cache.Config{HOCBytes: 64 << 10, DCBytes: 1 << 20}, n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != n || !s.Concurrent() {
		t.Fatalf("Shards()=%d Concurrent()=%v", s.Shards(), s.Concurrent())
	}
	for _, r := range tr.Requests {
		s.Serve(r)
	}
	var sum cache.Metrics
	for i := 0; i < n; i++ {
		m := s.ShardMetrics(i)
		if m.Requests == 0 {
			t.Errorf("shard %d saw no traffic", i)
		}
		sum.Requests += m.Requests
		sum.Bytes += m.Bytes
		sum.HOCHits += m.HOCHits
		sum.HOCHitBytes += m.HOCHitBytes
		sum.DCHits += m.DCHits
		sum.DCHitBytes += m.DCHitBytes
		sum.Misses += m.Misses
		sum.MissBytes += m.MissBytes
		sum.DCWrites += m.DCWrites
		sum.DCWriteBytes += m.DCWriteBytes
		sum.HOCAdmits += m.HOCAdmits
	}
	if got := s.Metrics(); got != sum {
		t.Fatalf("aggregate %+v != shard sum %+v", got, sum)
	}
	if got := s.Metrics().Requests; got != int64(len(tr.Requests)) {
		t.Fatalf("aggregate requests %d, want %d", got, len(tr.Requests))
	}
	e := cache.Expert{Freq: 3, MaxSize: 1 << 14}
	s.SetExpert(e)
	if got := s.Expert(); got != e {
		t.Fatalf("Expert() = %+v after broadcast, want %+v", got, e)
	}
	if got := s.ExpertSwitches(); got != 1 {
		t.Fatalf("ExpertSwitches() = %d, want 1", got)
	}
	s.ResetMetrics()
	if got := s.Metrics(); got != (cache.Metrics{}) {
		t.Fatalf("metrics after reset: %+v", got)
	}
}

// TestShardedConcurrent hammers a multi-shard engine from many goroutines
// (Serve + Lookup) while readers poll Metrics and the control plane
// broadcasts SetExpert — run under -race this is the data-plane safety
// proof, and the final aggregate must still account for every request.
func TestShardedConcurrent(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(40, 24_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cache.NewSharded(cache.Config{HOCBytes: 64 << 10, DCBytes: 1 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tr.Requests); i += workers {
				r := tr.Requests[i]
				s.Serve(r)
				s.Lookup(r.ID)
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		experts := cache.DefaultGrid()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := s.Metrics()
			if hits := m.HOCHits + m.DCHits; hits+m.Misses != m.Requests {
				panic("torn aggregate: hits+misses != requests")
			}
			if i%64 == 0 {
				s.SetExpert(experts[i/64%len(experts)])
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := s.Metrics().Requests; got != int64(len(tr.Requests)) {
		t.Fatalf("requests %d, want %d", got, len(tr.Requests))
	}
}

// TestNewShardedRejects covers the constructor guard rails.
func TestNewShardedRejects(t *testing.T) {
	if _, err := cache.NewSharded(cache.Config{HOCBytes: 4, DCBytes: 1 << 20}, 8); err == nil {
		t.Error("want error for capacity smaller than shard count")
	}
	tk := cache.NewExactTracker()
	if _, err := cache.NewSharded(cache.Config{HOCBytes: 1 << 20, DCBytes: 1 << 20, Tracker: tk}, 2); err == nil {
		t.Error("want error for shared Tracker with shards > 1")
	}
	if _, err := cache.NewSharded(cache.Config{HOCBytes: 1 << 20, DCBytes: 1 << 20, Tracker: tk}, 1); err != nil {
		t.Errorf("shards=1 with a Tracker should be allowed: %v", err)
	}
	s, err := cache.NewSharded(cache.Config{HOCBytes: 1 << 20, DCBytes: 1 << 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 1 {
		t.Errorf("shards<=0 should clamp to 1, got %d", s.Shards())
	}
}
