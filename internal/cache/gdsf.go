package cache

import "container/heap"

// GDSF is the Greedy-Dual-Size-Frequency eviction policy (Cherkasova,
// HPL-98-69), widely used by CDN disk caches: each object carries priority
// H = L + frequency · cost / size (cost = 1 here), where L is the inflation
// value — the priority of the last evicted object. Small, frequently
// requested objects are retained; large cold objects go first. Provided as
// a further eviction ablation beyond the paper's LRU default.
type GDSF struct {
	h     gdsfHeap
	index map[uint64]*gdsfEntry
	pool  []*gdsfEntry
	bytes int64
	l     float64 // inflation
	seq   uint64
}

type gdsfEntry struct {
	id    uint64
	size  int64
	freq  float64
	prio  float64
	seq   uint64
	index int
}

type gdsfHeap []*gdsfEntry

func (h gdsfHeap) Len() int { return len(h) }
func (h gdsfHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h gdsfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *gdsfHeap) Push(x any) {
	e := x.(*gdsfEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *gdsfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewGDSF returns an empty GDSF policy.
func NewGDSF() *GDSF {
	return &GDSF{index: make(map[uint64]*gdsfEntry)}
}

func (g *GDSF) priority(freq float64, size int64) float64 {
	if size < 1 {
		size = 1
	}
	return g.l + freq/float64(size)
}

// Insert implements Eviction.
func (g *GDSF) Insert(id uint64, size int64) {
	if e, ok := g.index[id]; ok {
		g.bytes += size - e.size
		e.size = size
		g.Touch(id)
		return
	}
	g.seq++
	var e *gdsfEntry
	if n := len(g.pool); n > 0 {
		e = g.pool[n-1]
		g.pool = g.pool[:n-1]
	} else {
		e = new(gdsfEntry)
	}
	*e = gdsfEntry{id: id, size: size, freq: 1, seq: g.seq}
	e.prio = g.priority(e.freq, size)
	g.index[id] = e
	heap.Push(&g.h, e)
	g.bytes += size
}

// Touch implements Eviction.
func (g *GDSF) Touch(id uint64) {
	if e, ok := g.index[id]; ok {
		e.freq++
		e.prio = g.priority(e.freq, e.size)
		heap.Fix(&g.h, e.index)
	}
}

// Hit implements Eviction.
func (g *GDSF) Hit(id uint64) bool {
	e, ok := g.index[id]
	if ok {
		e.freq++
		e.prio = g.priority(e.freq, e.size)
		heap.Fix(&g.h, e.index)
	}
	return ok
}

// Victim implements Eviction.
func (g *GDSF) Victim() (uint64, int64, bool) {
	if len(g.h) == 0 {
		return 0, 0, false
	}
	return g.h[0].id, g.h[0].size, true
}

// Remove implements Eviction; evicting the current minimum advances the
// inflation value L (the greedy-dual aging mechanism).
func (g *GDSF) Remove(id uint64) {
	e, ok := g.index[id]
	if !ok {
		return
	}
	if len(g.h) > 0 && g.h[0] == e {
		g.l = e.prio
	}
	g.bytes -= e.size
	heap.Remove(&g.h, e.index)
	delete(g.index, id)
	g.pool = append(g.pool, e)
}

// Contains implements Eviction.
func (g *GDSF) Contains(id uint64) bool { _, ok := g.index[id]; return ok }

// Size implements Eviction.
func (g *GDSF) Size(id uint64) int64 {
	if e, ok := g.index[id]; ok {
		return e.size
	}
	return 0
}

// Len implements Eviction.
func (g *GDSF) Len() int { return len(g.index) }

// Bytes implements Eviction.
func (g *GDSF) Bytes() int64 { return g.bytes }

// Entries implements Eviction (heap-array order: deterministic for a given
// insertion history, so policy migrations replay identically — map iteration
// here would make SetHOCEviction nondeterministic).
func (g *GDSF) Entries() []ResidentObject {
	out := make([]ResidentObject, 0, len(g.h))
	for _, e := range g.h {
		out = append(out, ResidentObject{ID: e.id, Size: e.size})
	}
	return out
}
