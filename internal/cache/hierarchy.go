package cache

import (
	"fmt"

	"darwin/internal/bloom"
	"darwin/internal/trace"
)

// Result says where a request was served from.
type Result int

// Request outcomes.
const (
	// HOCHit: served from the in-memory Hot Object Cache.
	HOCHit Result = iota
	// DCHit: served from the Disk Cache.
	DCHit
	// Miss: fetched from the origin over the WAN.
	Miss
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case HOCHit:
		return "hoc-hit"
	case DCHit:
		return "dc-hit"
	case Miss:
		return "miss"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Metrics accumulates cache performance counters. All byte counters are in
// bytes; the derived-metric methods implement the paper's objectives.
type Metrics struct {
	Requests     int64
	Bytes        int64
	HOCHits      int64
	HOCHitBytes  int64
	DCHits       int64
	DCHitBytes   int64
	Misses       int64
	MissBytes    int64
	DCWrites     int64 // objects admitted to the DC
	DCWriteBytes int64 // bytes written to the DC (SSD endurance driver, §2.2)
	HOCAdmits    int64 // promotions into the HOC
}

// OHR returns the HOC object hit rate, the paper's primary metric.
func (m Metrics) OHR() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.HOCHits) / float64(m.Requests)
}

// TotalOHR returns the combined HOC+DC object hit rate.
func (m Metrics) TotalOHR() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.HOCHits+m.DCHits) / float64(m.Requests)
}

// BMR returns the HOC byte miss ratio: bytes not served from the HOC over
// total bytes (§6.3, Figure 6a).
func (m Metrics) BMR() float64 {
	if m.Bytes == 0 {
		return 0
	}
	return float64(m.Bytes-m.HOCHitBytes) / float64(m.Bytes)
}

// DiskWritesPerRequest returns DC write bytes per request, the resource term
// of the paper's combined objective OHR − k·diskWrites/#requests (§6.3).
func (m Metrics) DiskWritesPerRequest() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.DCWriteBytes) / float64(m.Requests)
}

// Sub returns m − prev, the metrics accumulated since prev was captured.
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		Requests:     m.Requests - prev.Requests,
		Bytes:        m.Bytes - prev.Bytes,
		HOCHits:      m.HOCHits - prev.HOCHits,
		HOCHitBytes:  m.HOCHitBytes - prev.HOCHitBytes,
		DCHits:       m.DCHits - prev.DCHits,
		DCHitBytes:   m.DCHitBytes - prev.DCHitBytes,
		Misses:       m.Misses - prev.Misses,
		MissBytes:    m.MissBytes - prev.MissBytes,
		DCWrites:     m.DCWrites - prev.DCWrites,
		DCWriteBytes: m.DCWriteBytes - prev.DCWriteBytes,
		HOCAdmits:    m.HOCAdmits - prev.HOCAdmits,
	}
}

// Config parameterises a Hierarchy.
type Config struct {
	// HOCBytes and DCBytes are the level capacities.
	HOCBytes, DCBytes int64
	// HOCEviction and DCEviction name the eviction policies ("lru" default).
	HOCEviction, DCEviction string
	// Expert is the initial HOC admission expert.
	Expert Expert
	// Tracker counts object frequencies; nil selects NewExactTracker.
	Tracker FrequencyTracker
	// BloomObjects sizes the DC one-hit-wonder filter; 0 selects a default
	// of one million expected objects.
	BloomObjects int
	// DCLog, when non-nil, receives every DC admission and eviction so a
	// durable store can rebuild the DC after a crash. Nil (the default)
	// keeps the hierarchy fully in-memory with an unchanged hot path.
	DCLog DCLog
}

// Hierarchy is the two-level HOC+DC cache server model (Figure 1 of the
// paper). Requests flow HOC → DC → origin; a DC hit may promote the object
// into the HOC subject to the current admission expert; a miss admits the
// object into the DC only on its second request (Bloom filter).
type Hierarchy struct {
	hoc, dc          Eviction
	hocCap, dcCap    int64
	hocName, dcName  string
	expert           Expert
	admission        AdmissionFunc
	tracker          FrequencyTracker
	seen             *bloom.Filter
	seenObjects      int
	dclog            DCLog
	admitOnMiss      bool
	reqIdx           int64
	m                Metrics
	expertSwitches   int64
}

// AdmissionFunc is a custom HOC admission predicate. It receives the
// object's observed request count (including the current request), its size,
// and its age in requests since the previous request (-1 when first seen).
// Baselines with non-threshold admission rules (e.g. AdaptSize's
// probabilistic size filter) install one via SetAdmission.
type AdmissionFunc func(count int, size int64, age int64) bool

// New builds a Hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.HOCBytes <= 0 || cfg.DCBytes <= 0 {
		return nil, fmt.Errorf("cache: capacities must be positive (hoc=%d dc=%d)", cfg.HOCBytes, cfg.DCBytes)
	}
	hoc, err := NewEvictionWithCapacity(cfg.HOCEviction, cfg.HOCBytes)
	if err != nil {
		return nil, err
	}
	dc, err := NewEvictionWithCapacity(cfg.DCEviction, cfg.DCBytes)
	if err != nil {
		return nil, err
	}
	tracker := cfg.Tracker
	if tracker == nil {
		tracker = NewExactTracker()
	}
	nBloom := cfg.BloomObjects
	if nBloom <= 0 {
		nBloom = 1 << 20
	}
	return &Hierarchy{
		hoc:         hoc,
		dc:          dc,
		hocCap:      cfg.HOCBytes,
		dcCap:       cfg.DCBytes,
		hocName:     cfg.HOCEviction,
		dcName:      cfg.DCEviction,
		expert:      cfg.Expert,
		tracker:     tracker,
		seen:        bloom.New(nBloom, 0.01),
		seenObjects: nBloom,
		dclog:       cfg.DCLog,
	}, nil
}

// SetExpert swaps the HOC admission expert; Darwin's online phase calls this
// at round and epoch boundaries.
func (h *Hierarchy) SetExpert(e Expert) {
	if e != h.expert {
		h.expertSwitches++
	}
	h.expert = e
}

// Expert returns the currently deployed admission expert.
func (h *Hierarchy) Expert() Expert { return h.expert }

// SetAdmission installs a custom HOC admission predicate that overrides the
// expert thresholds; passing nil restores expert-based admission.
func (h *Hierarchy) SetAdmission(f AdmissionFunc) { h.admission = f }

// SetAdmitOnMiss also evaluates HOC admission on full misses (after the
// origin fetch), not only on DC hits. Darwin's experts promote only on DC
// hits (Figure 1), but AdaptSize-style per-request admission decides for
// every fetched object — which is how one-hit wonders can pollute its HOC
// (§3.2.1).
func (h *Hierarchy) SetAdmitOnMiss(v bool) { h.admitOnMiss = v }

// ExpertSwitches returns how many times the deployed expert changed.
func (h *Hierarchy) ExpertSwitches() int64 { return h.expertSwitches }

// Lookup reports where id would be served from right now, mutating no cache
// state, metrics, or frequency tracking. The HTTP proxy probes residency
// with Lookup before an origin fetch and commits the request through Serve
// only after the fetch succeeds, so failed fetches never produce phantom
// admissions.
func (h *Hierarchy) Lookup(id uint64) Result {
	if h.hoc.Contains(id) {
		return HOCHit
	}
	if h.dc.Contains(id) {
		return DCHit
	}
	return Miss
}

// Serve processes one request and returns where it was served from.
func (h *Hierarchy) Serve(r trace.Request) Result {
	idx := h.reqIdx
	h.reqIdx++
	count, age := h.tracker.Observe(r.ID, idx)

	h.m.Requests++
	h.m.Bytes += r.Size

	if h.hoc.Hit(r.ID) {
		h.m.HOCHits++
		h.m.HOCHitBytes += r.Size
		return HOCHit
	}

	if h.dc.Hit(r.ID) {
		h.m.DCHits++
		h.m.DCHitBytes += r.Size
		// Promotion into the HOC is governed by the deployed expert (or a
		// custom admission override).
		admit := h.expert.Admit(count, r.Size, age)
		if h.admission != nil {
			admit = h.admission(count, r.Size, age)
		}
		if admit {
			h.admitHOC(r.ID, r.Size)
		}
		return DCHit
	}

	// Full miss: fetch from origin. DC admission sheds one-hit wonders by
	// admitting only objects previously recorded in the Bloom filter (§2.2).
	h.m.Misses++
	h.m.MissBytes += r.Size
	if h.seen.TestAndAddU64(r.ID) {
		h.admitDC(r.ID, r.Size)
	}
	if h.admitOnMiss && h.admission != nil && h.admission(count, r.Size, age) {
		h.admitHOC(r.ID, r.Size)
	}
	return Miss
}

func (h *Hierarchy) admitHOC(id uint64, size int64) {
	if size > h.hocCap {
		return
	}
	for h.hoc.Bytes()+size > h.hocCap {
		vid, _, ok := h.hoc.Victim()
		if !ok {
			return
		}
		h.hoc.Remove(vid)
	}
	h.hoc.Insert(id, size)
	h.m.HOCAdmits++
}

func (h *Hierarchy) admitDC(id uint64, size int64) {
	if size > h.dcCap {
		return
	}
	for h.dc.Bytes()+size > h.dcCap {
		vid, _, ok := h.dc.Victim()
		if !ok {
			return
		}
		h.dc.Remove(vid)
		if h.dclog != nil {
			h.dclog.Remove(vid)
		}
	}
	h.dc.Insert(id, size)
	if h.dclog != nil {
		h.dclog.Put(id, size)
	}
	h.m.DCWrites++
	h.m.DCWriteBytes += size
}

// Play serves every request in tr.
func (h *Hierarchy) Play(tr *trace.Trace) {
	for _, r := range tr.Requests {
		h.Serve(r)
	}
}

// Metrics returns a snapshot of the accumulated counters.
func (h *Hierarchy) Metrics() Metrics { return h.m }

// ResetMetrics zeroes the counters without disturbing cache contents — used
// to exclude warm-up requests from reported results, as the paper does with
// the first 1M requests of every trace.
func (h *Hierarchy) ResetMetrics() { h.m = Metrics{} }

// HOCBytes returns resident HOC bytes (for occupancy assertions in tests).
func (h *Hierarchy) HOCBytes() int64 { return h.hoc.Bytes() }

// DCBytes returns resident DC bytes.
func (h *Hierarchy) DCBytes() int64 { return h.dc.Bytes() }

// HOCLen returns the number of HOC-resident objects.
func (h *Hierarchy) HOCLen() int { return h.hoc.Len() }

// DCLen returns the number of DC-resident objects.
func (h *Hierarchy) DCLen() int { return h.dc.Len() }

// HOCContains reports HOC residency (prototype fast path).
func (h *Hierarchy) HOCContains(id uint64) bool { return h.hoc.Contains(id) }

// HOCVictim returns the object the HOC eviction policy would evict next —
// used by admission filters (e.g. TinyLFU) that compare a candidate against
// the incumbent victim.
func (h *Hierarchy) HOCVictim() (id uint64, size int64, ok bool) { return h.hoc.Victim() }

// SetHOCEviction swaps the HOC eviction policy at runtime, migrating the
// resident objects into the new policy (in the old policy's victim-first
// order, so relative protection is approximately preserved). This supports
// the §7 future-work extension — learning eviction decisions with the same
// expert-selection machinery.
func (h *Hierarchy) SetHOCEviction(name string) error {
	next, err := NewEvictionWithCapacity(name, h.hocCap)
	if err != nil {
		return err
	}
	entries := h.hoc.Entries()
	// Insert most-protected objects last so list-based policies place them
	// nearest the MRU end.
	for _, e := range entries {
		next.Insert(e.ID, e.Size)
	}
	h.hoc = next
	return nil
}
