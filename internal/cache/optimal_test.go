package cache

import (
	"testing"

	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func seq(ids ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "seq"}
	for i, id := range ids {
		tr.Requests = append(tr.Requests, trace.Request{ID: id, Size: 1, Time: int64(i)})
	}
	return tr
}

func TestOfflineOptimalClassicBelady(t *testing.T) {
	// The canonical Belady example: capacity 3 (unit sizes),
	// sequence 1 2 3 4 1 2 5 1 2 3 4 5.
	tr := seq(1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5)
	hits, requests := OfflineOptimal(tr, 3, 0)
	if requests != 12 {
		t.Fatalf("requests = %d", requests)
	}
	// Optimal (MIN) incurs 7 faults on this sequence → 5 hits... with
	// admission-optional MIN the bound can only be >= the classic MIN hits.
	if hits < 5 {
		t.Fatalf("hits = %d, want >= 5 (classic MIN achieves 5)", hits)
	}
	if hits > 7 {
		t.Fatalf("hits = %d, impossible (only 7 re-references exist)", hits)
	}
}

func TestOfflineOptimalPerfectWhenFits(t *testing.T) {
	// Everything fits: every re-reference is a hit.
	tr := seq(1, 2, 3, 1, 2, 3, 1, 2, 3)
	hits, _ := OfflineOptimal(tr, 100, 0)
	if hits != 6 {
		t.Fatalf("hits = %d, want 6", hits)
	}
}

func TestOfflineOptimalSkipsOneHitWonders(t *testing.T) {
	// Capacity 1: object 2 appears once and must never displace object 1.
	tr := seq(1, 2, 1, 3, 1, 4, 1)
	hits, _ := OfflineOptimal(tr, 1, 0)
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (all re-references of object 1)", hits)
	}
}

func TestOfflineOptimalBoundsEveryExpert(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20000, 91)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1}
	bound := OfflineOptimalOHR(tr, cfg.HOCBytes, cfg.WarmupFrac)
	for _, e := range DefaultGrid()[:12] {
		m, err := Evaluate(tr, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.OHR() > bound+1e-9 {
			t.Fatalf("expert %v OHR %.4f exceeds clairvoyant bound %.4f", e, m.OHR(), bound)
		}
	}
	if bound <= 0 || bound >= 1 {
		t.Fatalf("bound = %v not sensible", bound)
	}
}

func TestOfflineOptimalEdgeCases(t *testing.T) {
	if h, r := OfflineOptimal(&trace.Trace{}, 100, 0); h != 0 || r != 0 {
		t.Fatal("empty trace should be 0/0")
	}
	if h, _ := OfflineOptimal(seq(1, 1), 0, 0); h != 0 {
		t.Fatal("zero capacity cannot hit")
	}
	// Object larger than capacity is never admitted.
	big := &trace.Trace{Requests: []trace.Request{
		{ID: 1, Size: 100, Time: 0}, {ID: 1, Size: 100, Time: 1},
	}}
	if h, _ := OfflineOptimal(big, 10, 0); h != 0 {
		t.Fatal("oversized object hit")
	}
}

func TestOfflineOptimalWarmupExclusion(t *testing.T) {
	tr := seq(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	hits, requests := OfflineOptimal(tr, 10, 0.5)
	if requests != 5 {
		t.Fatalf("requests = %d, want 5 post-warm-up", requests)
	}
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
}

func BenchmarkOfflineOptimal(b *testing.B) {
	tr, err := tracegen.ImageDownloadMix(50, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OfflineOptimal(tr, 256<<10, 0.1)
	}
}
