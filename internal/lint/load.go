package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package: its syntax trees plus the
// types.Info the analyzers resolve identifiers and expressions through.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// ImportPath is the module-relative import path (e.g. darwin/internal/cache).
	ImportPath string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds identifier/expression resolution for Files.
	Info *types.Info
}

// Program is a loaded module: every package the analyzers may inspect, plus
// the shared FileSet that positions resolve through.
type Program struct {
	Fset *token.FileSet
	// Pkgs lists the loaded module packages in deterministic (import path)
	// order.
	Pkgs []*Package
}

// Loader type-checks module packages using only the standard library: module
// imports are resolved recursively from the module tree, everything else is
// delegated to the stdlib source importer.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // completed module packages by import path
	loading    map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: abs,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Import implements types.Importer, routing module-local paths to the module
// tree and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleDir maps a module-local import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.modulePath {
		return l.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadAll loads every package in the module tree (skipping testdata, hidden
// and underscore-prefixed directories) and returns them as a Program.
func (l *Loader) LoadAll() (*Program, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	prog := &Program{Fset: l.fset}
	for _, dir := range dirs {
		ip := l.importPathFor(dir)
		pkg, err := l.load(dir, ip)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// LoadDirAs loads the package in dir under an explicit import path. Fixture
// tests use it to place testdata packages at rule-covered paths.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, importPath)
}

// importPathFor derives the import path of a module directory.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether e is a non-test Go source file.
func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// load parses and type-checks one package directory (memoised; detects import
// cycles).
func (l *Loader) load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
