package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runHotPath protects the allocation-free request loop: it builds a static
// call graph over the whole module, marks every function reachable from the
// configured roots (interface calls fan out to every module implementation),
// and reports allocation hazards inside reachable bodies — fmt calls,
// non-constant string concatenation, closures capturing outer variables, and
// any use of container/list.
func runHotPath(cfg *Config, prog *Program) []Diagnostic {
	g := newCallGraph(prog)
	roots := resolveRoots(prog, g, cfg.HotPathRoots)
	if len(roots) == 0 {
		return nil
	}

	// BFS; via[f] names the root that first reached f, for diagnostics.
	via := make(map[*types.Func]string)
	var queue []*types.Func
	for f, rootName := range roots {
		if _, ok := via[f]; !ok {
			via[f] = rootName
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, callee := range g.edges[f] {
			if _, ok := via[callee]; ok {
				continue
			}
			via[callee] = via[f]
			queue = append(queue, callee)
		}
	}

	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, fd := range funcDecls(pkg) {
			f, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			root, reachable := via[f]
			if !reachable {
				continue
			}
			diags = append(diags, hotPathViolations(prog, pkg, fd, f, root)...)
		}
	}
	return diags
}

// hotPathViolations scans one hot-path function body for allocation hazards.
func hotPathViolations(prog *Program, pkg *Package, fd *ast.FuncDecl, f *types.Func, root string) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "hotpath",
			Msg:  fmt.Sprintf(format, args...) + fmt.Sprintf(" in %s (hot path, reachable from %s)", f.Name(), root),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(pkg, node); ok && path == "fmt" {
				report(node.Pos(), "fmt.%s allocates", name)
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[node]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "container/list" {
				report(node.Pos(), "container/list %s allocates per node; use the slab-backed intrusive list", obj.Name())
			}
		case *ast.BinaryExpr:
			if node.Op != token.ADD {
				break
			}
			if tv, ok := pkg.Info.Types[node]; ok && tv.Value == nil && isStringType(tv.Type) {
				report(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if node.Tok != token.ADD_ASSIGN || len(node.Lhs) != 1 {
				break
			}
			if tv, ok := pkg.Info.Types[node.Lhs[0]]; ok && isStringType(tv.Type) {
				report(node.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if name, ok := capturedVar(pkg, node); ok {
				report(node.Pos(), "closure captures %s and may allocate; hoist it or pass state explicitly", name)
			}
		}
		return true
	})
	return diags
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

// capturedVar returns the name of a variable the function literal captures
// from an enclosing function scope, if any.
func capturedVar(pkg *Package, fl *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pkg.Types {
			return true
		}
		if v.Parent() == pkg.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level state is not a capture
		}
		if !declaredWithin(v, fl) {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

// callGraph is the module's static call graph. Interface method calls are
// resolved to every module type implementing the interface.
type callGraph struct {
	prog *Program
	// edges maps a declared function to its statically resolvable callees.
	edges map[*types.Func][]*types.Func
	// namedTypes lists every package-level non-interface named type in the
	// module, for interface fan-out.
	namedTypes []*types.Named
}

// newCallGraph indexes declarations and resolves every call site.
func newCallGraph(prog *Program) *callGraph {
	g := &callGraph{prog: prog, edges: make(map[*types.Func][]*types.Func)}
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, fd := range funcDecls(pkg) {
			caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				g.edges[caller] = append(g.edges[caller], g.callees(pkg, call)...)
				return true
			})
		}
	}
	return g
}

// callees resolves one call site to zero or more declared functions.
func (g *callGraph) callees(pkg *Package, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []*types.Func{f}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // func-typed field: dynamically dispatched
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return g.implementations(recv.Type(), f.Name())
			}
			return []*types.Func{f}
		}
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{f}
		}
	}
	return nil
}

// implementations returns the concrete method name on every module type that
// implements the interface.
func (g *callGraph) implementations(ifaceType types.Type, name string) []*types.Func {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range g.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// resolveRoots maps configured root strings ("pkgpath.Func" or
// "pkgpath.Type.Method") to declared functions. A root naming an interface
// method expands to every module implementation.
func resolveRoots(prog *Program, g *callGraph, roots []string) map[*types.Func]string {
	out := make(map[*types.Func]string)
	for _, root := range roots {
		for _, pkg := range prog.Pkgs {
			rest, ok := strings.CutPrefix(root, pkg.ImportPath+".")
			if !ok {
				continue
			}
			parts := strings.Split(rest, ".")
			scope := pkg.Types.Scope()
			switch len(parts) {
			case 1:
				if f, ok := scope.Lookup(parts[0]).(*types.Func); ok {
					out[f] = shortRoot(root)
				}
			case 2:
				tn, ok := scope.Lookup(parts[0]).(*types.TypeName)
				if !ok {
					continue
				}
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					for _, f := range g.implementations(iface, parts[1]) {
						out[f] = shortRoot(root)
					}
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, parts[1])
				if f, ok := obj.(*types.Func); ok {
					out[f] = shortRoot(root)
				}
			}
		}
	}
	return out
}

// shortRoot trims a root's package path to its last element for messages.
func shortRoot(root string) string {
	if i := strings.LastIndex(root, "/"); i >= 0 {
		return root[i+1:]
	}
	return root
}
