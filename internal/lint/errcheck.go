package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// runErrcheck reports discarded error returns in the configured packages: a
// call whose final result is an error, used as a bare statement, silently
// drops a failure. Deferred calls and explicit `_ =` assignments are
// intentional discards and are not flagged, and the infallible in-memory
// writers (strings.Builder, bytes.Buffer) are exempt.
func runErrcheck(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.ErrcheckPkgs) {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !returnsError(pkg, call) || infallibleWriter(pkg, call) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  prog.Fset.Position(stmt.Pos()),
					Rule: "errcheck",
					Msg:  fmt.Sprintf("discarded error from %s (handle it or assign to _ explicitly)", types.ExprString(call.Fun)),
				})
				return true
			})
		}
	}
	return diags
}

// returnsError reports whether call's final result is of type error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// infallibleWriter reports whether call writes to an in-memory buffer whose
// Write methods never return a non-nil error: a method on strings.Builder or
// bytes.Buffer, or an fmt.Fprint* whose writer is one of those.
func infallibleWriter(pkg *Package, call *ast.CallExpr) bool {
	if path, name, ok := pkgFuncCall(pkg, call); ok {
		if path == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln") && len(call.Args) > 0 {
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok {
				return isBufferType(tv.Type)
			}
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return isBufferType(s.Recv())
}

// isBufferType reports whether t is strings.Builder or bytes.Buffer (possibly
// via pointer).
func isBufferType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	}
	return false
}
