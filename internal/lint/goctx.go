package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runGoCtx guards the serving tier against goroutine leaks: every go
// statement in the scoped packages must spawn a body with a visible
// termination path — a context.Context use, a channel operation (send,
// receive, select, range-over-channel), or a WaitGroup.Done — in the body
// itself or in a statically-called function. A goroutine with none of these
// runs until process exit, which in a drain-aware proxy means leaked
// connections and a server that never quiesces.
//
// Spawns whose target cannot be resolved statically (func-typed fields,
// interface methods, call results) are skipped: the rule under-approximates
// rather than guessing.
func runGoCtx(cfg *Config, prog *Program) []Diagnostic {
	if len(cfg.GoCtxPkgs) == 0 {
		return nil
	}
	gc := &goCtx{decls: declIndex(prog), memo: make(map[*types.Func]int8)}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.GoCtxPkgs) {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				bpkg, body := gc.resolveSpawn(pkg, fd, gs.Call)
				if body == nil {
					return true
				}
				if !gc.nodeTerminates(bpkg, body, 0) {
					diags = append(diags, Diagnostic{
						Pos:  prog.Fset.Position(gs.Pos()),
						Rule: "goctx",
						Msg:  "goroutine has no termination path (no context use, channel operation, or WaitGroup.Done reachable from its body); it can leak",
					})
				}
				return true
			})
		}
	}
	return diags
}

type goCtx struct {
	decls map[*types.Func]*declBody
	// memo caches nodeTerminates per declared function: 0 unknown, 1 in
	// progress (treated as non-terminating to break cycles), 2 yes, 3 no.
	memo map[*types.Func]int8
}

// resolveSpawn finds the body the go statement runs: a literal, a local
// variable assigned a literal, or a declared function/method.
func (gc *goCtx) resolveSpawn(pkg *Package, enclosing *ast.FuncDecl, call *ast.CallExpr) (*Package, ast.Node) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return pkg, fun.Body
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			if db, ok := gc.decls[obj]; ok {
				return db.pkg, db.body
			}
		case *types.Var:
			return pkg, localFuncLit(pkg, enclosing, obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if db, ok := gc.decls[f]; ok {
					return db.pkg, db.body
				}
			}
		}
	}
	return nil, nil
}

// localFuncLit finds the function literal assigned to local variable v
// inside the enclosing declaration.
func localFuncLit(pkg *Package, enclosing *ast.FuncDecl, v *types.Var) ast.Node {
	var body ast.Node
	ast.Inspect(enclosing, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(node.Rhs) {
					continue
				}
				if pkg.Info.Defs[id] == v || pkg.Info.Uses[id] == v {
					if fl, ok := node.Rhs[i].(*ast.FuncLit); ok {
						body = fl.Body
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range node.Names {
				if pkg.Info.Defs[name] == v && i < len(node.Values) {
					if fl, ok := node.Values[i].(*ast.FuncLit); ok {
						body = fl.Body
					}
				}
			}
		}
		return true
	})
	return body
}

// maxSpawnDepth bounds how far termination signals propagate through static
// calls from the spawned body.
const maxSpawnDepth = 3

// nodeTerminates scans node (including nested literals — a signal anywhere
// in the lexical body counts) for a termination path, following static
// calls up to maxSpawnDepth.
func (gc *goCtx) nodeTerminates(pkg *Package, node ast.Node, depth int) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if waitGroupSignal(pkg, e) {
				found = true
				break
			}
			if depth < maxSpawnDepth {
				for _, callee := range staticCallees(pkg, e) {
					if gc.funcTerminates(callee, depth+1) {
						found = true
						break
					}
				}
			}
		}
		return !found
	})
	return found
}

// funcTerminates is nodeTerminates over a declared function, memoised.
func (gc *goCtx) funcTerminates(f *types.Func, depth int) bool {
	switch gc.memo[f] {
	case 1: // in progress: break the cycle pessimistically
		return false
	case 2:
		return true
	case 3:
		return false
	}
	db, ok := gc.decls[f]
	if !ok {
		return false // no body in the module (stdlib): no visible signal
	}
	gc.memo[f] = 1
	ok = gc.nodeTerminates(db.pkg, db.body, depth)
	if ok {
		gc.memo[f] = 2
	} else {
		gc.memo[f] = 3
	}
	return ok
}

// waitGroupSignal reports a call to (*sync.WaitGroup).Done or .Wait.
func waitGroupSignal(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	named := namedOf(s.Recv())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
