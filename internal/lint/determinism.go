package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wallClockFuncs are the time package reads that leak wall-clock state into a
// replay.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// orderedSinkMethods are method names that emit or accumulate ordered output;
// calling one on an outer receiver from inside a map range leaks iteration
// order into results.
var orderedSinkMethods = map[string]bool{
	"AddRow": true, "AddNote": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true,
	"Encode": true,
}

// printFuncs are the fmt package's direct-output functions.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// runDeterminism enforces the replay-determinism boundary: inside the
// configured packages a replay must be a pure function of (trace, seed), so
// wall-clock reads, the process-global math/rand generator, and map iteration
// that feeds ordered output are all reported.
func runDeterminism(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.DeterminismPkgs) {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			diags = append(diags, determinismInFunc(prog, pkg, fd)...)
		}
	}
	return diags
}

// determinismInFunc checks one function body.
func determinismInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "determinism",
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(pkg, node); ok {
				switch {
				case path == "time" && wallClockFuncs[name]:
					report(node.Pos(), "wall-clock time.%s in determinism-critical package (use trace timestamps or an injected clock)", name)
				case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(name, "New"):
					report(node.Pos(), "process-global rand.%s in determinism-critical package (use a seeded *rand.Rand)", name)
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					diags = append(diags, mapRangeOrderLeaks(prog, pkg, fd, node)...)
				}
			}
		}
		return true
	})
	return diags
}

// mapRangeOrderLeaks reports ways the body of a map range statement lets Go's
// randomized iteration order reach rendered output or order-sensitive
// accumulation. Collecting keys into a slice is fine when the slice is sorted
// later in the same function (the required sorted-key idiom).
func mapRangeOrderLeaks(prog *Program, pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "determinism",
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			switch node.Tok {
			case token.ASSIGN:
				if len(node.Lhs) == 1 && len(node.Rhs) == 1 && isAppendCall(pkg, node.Rhs[0]) {
					obj := rootObject(pkg, node.Lhs[0])
					if obj != nil && !declaredWithin(obj, rs) && !sortedAfter(pkg, fd, rs, obj) {
						report(node.Pos(), "append to %s under map iteration without a later sort: iteration order leaks into the slice (sort keys first or sort the result)", obj.Name())
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				obj := rootObject(pkg, node.Lhs[0])
				if obj == nil || declaredWithin(obj, rs) {
					break
				}
				if tv, ok := pkg.Info.Types[node.Lhs[0]]; ok && orderSensitiveKind(tv.Type) {
					report(node.Pos(), "order-dependent accumulation into %s under map iteration (iterate sorted keys)", obj.Name())
				}
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(pkg, node); ok && path == "fmt" && printFuncs[name] {
				report(node.Pos(), "fmt.%s under map iteration emits output in random order (iterate sorted keys)", name)
				break
			}
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && orderedSinkMethods[sel.Sel.Name] {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if obj := rootObject(pkg, sel.X); obj != nil && !declaredWithin(obj, rs) {
						report(node.Pos(), "map iteration order feeds ordered output via %s.%s (iterate sorted keys)", obj.Name(), sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
	return diags
}

// isAppendCall reports whether expr is a call to the append builtin.
func isAppendCall(pkg *Package, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderSensitiveKind reports whether accumulating values of type t is
// sensitive to accumulation order (floats and strings; integer sums commute).
func orderSensitiveKind(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Float32, types.Float64, types.Complex64, types.Complex128, types.String:
		return true
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort* call
// after rs within fd's body — the collect-then-sort idiom.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		path, name, ok := pkgFuncCall(pkg, call)
		if !ok || (path != "sort" && path != "slices") || !strings.Contains(name, "Sort") && !isSortShorthand(path, name) {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pkg, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortShorthand covers sort's typed helpers that do not contain "Sort" in
// their name.
func isSortShorthand(path, name string) bool {
	if path != "sort" {
		return false
	}
	switch name {
	case "Ints", "Strings", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}
