package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// runAtomicMix enforces two memory-discipline invariants module-wide:
//
//   - a field or variable whose address is passed to a sync/atomic function
//     anywhere must never be read or written plainly — mixing the two gives
//     racy, torn, or stale views that the race detector only catches when a
//     test happens to interleave them;
//   - structs that embed synchronization state (sync.Mutex/RWMutex/
//     WaitGroup/Cond, sync/atomic value types, or a stripe.Cell/Counters
//     seqlock) must not be copied by value: the copy forks the lock or the
//     sequence number, silently splitting the critical section. This extends
//     vet's copylocks to the repo's seqlock cells, whose state is plain
//     integers vet cannot see. Checked copy sites are assignments and var
//     initializers reading an existing value, by-value range over such
//     element types, and by-value call arguments.
func runAtomicMix(cfg *Config, prog *Program) []Diagnostic {
	if len(cfg.AtomicMixPkgs) == 0 {
		return nil
	}
	var scoped []*Package
	for _, pkg := range prog.Pkgs {
		if hasPrefixPath(pkg.ImportPath, cfg.AtomicMixPkgs) {
			scoped = append(scoped, pkg)
		}
	}

	// Pass 1: collect every object whose address feeds sync/atomic, and
	// exempt the nodes inside those calls' argument lists.
	atomicSite := make(map[types.Object]token.Position)
	exempt := make(map[token.Pos]bool)
	for _, pkg := range scoped {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, _, ok := pkgFuncCall(pkg, call); !ok || path != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if m != nil {
							exempt[m.Pos()] = true
						}
						return true
					})
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						if obj := addrTarget(pkg, un.X); obj != nil {
							if _, seen := atomicSite[obj]; !seen {
								atomicSite[obj] = prog.Fset.Position(un.Pos())
							}
						}
					}
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "atomicmix",
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	// Pass 2: plain accesses of atomically-updated objects, plus value
	// copies of lock-bearing types.
	for _, pkg := range scoped {
		qual := types.RelativeTo(pkg.Types)
		flagCopy := func(pos token.Pos, t types.Type, verb string) {
			if inner, found := lockComponent(t, nil); found {
				report(pos, "%s %s which contains %s; share it by pointer", verb, types.TypeString(t, qual), inner)
			}
		}
		for _, fd := range funcDecls(pkg) {
			skip := skippedIdents(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.SelectorExpr:
					if sel, ok := pkg.Info.Selections[node]; ok && sel.Kind() == types.FieldVal {
						if site, hot := atomicSite[sel.Obj()]; hot && !exempt[node.Pos()] {
							report(node.Pos(), "%s is accessed atomically elsewhere (%s:%d) but plainly here; every access must go through sync/atomic",
								sel.Obj().Name(), filepath.Base(site.Filename), site.Line)
						}
					}
				case *ast.Ident:
					if skip[node] {
						return true
					}
					if obj := pkg.Info.Uses[node]; obj != nil {
						if site, hot := atomicSite[obj]; hot && !exempt[node.Pos()] {
							report(node.Pos(), "%s is accessed atomically elsewhere (%s:%d) but plainly here; every access must go through sync/atomic",
								obj.Name(), filepath.Base(site.Filename), site.Line)
						}
					}
				case *ast.AssignStmt:
					for _, rhs := range node.Rhs {
						if isValueRead(rhs) {
							if tv, ok := pkg.Info.Types[rhs]; ok {
								flagCopy(rhs.Pos(), tv.Type, "copies")
							}
						}
					}
				case *ast.RangeStmt:
					if node.Value != nil {
						if t := exprType(pkg, node.Value); t != nil {
							if inner, found := lockComponent(t, nil); found {
								report(node.Pos(), "range copies %s which contains %s; iterate by index or store pointers",
									types.TypeString(t, qual), inner)
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
						if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
							return true
						}
					}
					for _, arg := range node.Args {
						if isValueRead(arg) {
							if tv, ok := pkg.Info.Types[arg]; ok {
								flagCopy(arg.Pos(), tv.Type, "passing by value copies")
							}
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// exprType resolves an expression's type, falling back to the defined or
// used object for identifiers the Types map omits (range variables).
func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// addrTarget resolves &expr's operand to the declared field or variable.
func addrTarget(pkg *Package, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		return pkg.Info.Uses[e]
	}
	return nil
}

// isValueRead reports whether expr reads an existing memory location by
// value (the copy-hazard shapes): a variable, field, element, or
// dereference. Composite literals and call results are fresh values whose
// construction is not a copy of shared state.
func isValueRead(expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockComponent reports whether t (recursively, through struct fields and
// array elements) contains synchronization state that must not be copied,
// naming the innermost offending type.
func lockComponent(t types.Type, visited map[types.Type]bool) (string, bool) {
	if visited[t] {
		return "", false
	}
	if visited == nil {
		visited = make(map[types.Type]bool)
	}
	visited[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path, name := obj.Pkg().Path(), obj.Name()
			switch {
			case path == "sync" && (name == "Mutex" || name == "RWMutex" || name == "WaitGroup" || name == "Cond"):
				return "sync." + name, true
			case path == "sync/atomic":
				return "atomic." + name, true
			case pathIsStripe(path) && (name == "Cell" || name == "Counters"):
				return "stripe." + name, true
			}
		}
		return lockComponent(named.Underlying(), visited)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner, found := lockComponent(u.Field(i).Type(), visited); found {
				return inner, true
			}
		}
	case *types.Array:
		return lockComponent(u.Elem(), visited)
	}
	return "", false
}

// pathIsStripe matches the seqlock package under any module prefix.
func pathIsStripe(path string) bool {
	return path == "internal/stripe" || strings.HasSuffix(path, "/internal/stripe")
}
