package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runCtxFirst enforces context propagation in the concurrency packages: an
// exported function whose body blocks (channel operations, select,
// WaitGroup.Wait, time.Sleep) must accept a context.Context, and any function
// taking a context.Context must take it as the first parameter. http.Handler
// methods are exempt — their context arrives inside *http.Request.
func runCtxFirst(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.CtxFirstPkgs) {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			if !fd.Name.IsExported() || isHandlerSignature(pkg, fd) {
				continue
			}
			ctxIndex := -1
			params := fd.Type.Params
			for i, field := range params.List {
				if tv, ok := pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
					ctxIndex = i
					break
				}
			}
			switch {
			case ctxIndex > 0:
				diags = append(diags, Diagnostic{
					Pos:  prog.Fset.Position(params.List[ctxIndex].Pos()),
					Rule: "ctxfirst",
					Msg:  fmt.Sprintf("context.Context must be the first parameter of %s", fd.Name.Name),
				})
			case ctxIndex < 0:
				if op, pos, blocks := blockingOp(pkg, fd); blocks {
					diags = append(diags, Diagnostic{
						Pos:  prog.Fset.Position(pos),
						Rule: "ctxfirst",
						Msg:  fmt.Sprintf("exported %s blocks (%s) but takes no context.Context; add ctx as the first parameter", fd.Name.Name, op),
					})
				}
			}
		}
	}
	return diags
}

// isHandlerSignature reports whether fd has the http.Handler ServeHTTP shape
// (http.ResponseWriter, *http.Request).
func isHandlerSignature(pkg *Package, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params.NumFields() != 2 {
		return false
	}
	isNet := func(e ast.Expr, name string, ptr bool) bool {
		if ptr {
			star, ok := e.(*ast.StarExpr)
			if !ok {
				return false
			}
			e = star.X
		}
		tv, ok := pkg.Info.Types[e]
		if !ok {
			return false
		}
		named := namedOf(tv.Type)
		return named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
	}
	return isNet(params.List[0].Type, "ResponseWriter", false) && isNet(params.List[1].Type, "Request", true)
}

// blockingOp finds the first direct blocking operation in fd's body
// (including function literals it defines), returning a description and its
// position.
func blockingOp(pkg *Package, fd *ast.FuncDecl) (string, token.Pos, bool) {
	var (
		op  string
		pos token.Pos
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt:
			op, pos = "channel send", node.Pos()
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				op, pos = "channel receive", node.Pos()
			}
		case *ast.SelectStmt:
			op, pos = "select", node.Pos()
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					op, pos = "range over channel", node.Pos()
				}
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(pkg, node); ok && path == "time" && name == "Sleep" {
				op, pos = "time.Sleep", node.Pos()
				break
			}
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if s, ok := pkg.Info.Selections[sel]; ok {
					named := namedOf(s.Recv())
					if named != nil && named.Obj().Pkg() != nil &&
						named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
						op, pos = "WaitGroup.Wait", node.Pos()
					}
				}
			}
		}
		return op == ""
	})
	return op, pos, op != ""
}
