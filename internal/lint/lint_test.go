package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches one loader across subtests so the stdlib source
// importer type-checks net/http and friends only once.
var sharedLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// wantRe matches expected-diagnostic annotations: want "regexp". The quoted
// pattern is matched against the diagnostic's "[rule] message" rendering.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// TestFixtures golden-checks every analyzer against its testdata package:
// each annotated line must produce a matching diagnostic and no unannotated
// diagnostics may appear.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"determinism", "hotpath", "locking", "errcheck", "ctxfirst", "suppress", "sharding",
		"lockorder", "seqlockpub", "atomicmix", "persistio", "goctx",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			l := loader(t)
			pkg, err := l.LoadDirAs(filepath.Join("testdata", name), FixturePrefix+name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			prog := &Program{Fset: l.Fset(), Pkgs: []*Package{pkg}}
			diags := Run(prog, FixtureConfig(name))

			if name != "suppress" {
				// Fixtures seed at least one violation, so the gate must fail
				// on them (the CLI exits non-zero on any diagnostic).
				if len(diags) == 0 {
					t.Fatalf("fixture produced no diagnostics; the rule is dead")
				}
			}

			got := map[int][]string{}
			for _, d := range diags {
				if filepath.Dir(d.Pos.Filename) != pkg.Dir {
					t.Errorf("diagnostic outside fixture: %s", d)
					continue
				}
				got[d.Pos.Line] = append(got[d.Pos.Line], fmt.Sprintf("[%s] %s", d.Rule, d.Msg))
			}
			for line, wants := range fixtureWants(t, pkg.Dir) {
				for _, w := range wants {
					re, err := regexp.Compile(w)
					if err != nil {
						t.Fatalf("line %d: bad want pattern %q: %v", line, w, err)
					}
					idx := -1
					for i, g := range got[line] {
						if re.MatchString(g) {
							idx = i
							break
						}
					}
					if idx < 0 {
						t.Errorf("line %d: want %q, diagnostics there: %v", line, w, got[line])
						continue
					}
					got[line] = append(got[line][:idx], got[line][idx+1:]...)
				}
			}
			for line, rest := range got {
				for _, g := range rest {
					t.Errorf("line %d: unexpected diagnostic %s", line, g)
				}
			}
		})
	}
}

// fixtureWants scans a fixture directory for want annotations by line.
func fixtureWants(t *testing.T, dir string) map[int][]string {
	t.Helper()
	wants := map[int][]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[i+1] = append(wants[i+1], m[1])
			}
		}
	}
	return wants
}

// TestRealTreeClean is the verification gate in test form: the shipped tree
// must type-check and produce zero diagnostics under the default config, and
// the hot-path roots must actually resolve (a rename must not silently
// disable the rule).
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	l := loader(t)
	prog, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	cfg := DefaultConfig()

	g := newCallGraph(prog)
	roots := resolveRoots(prog, g, cfg.HotPathRoots)
	if len(roots) < 2 {
		t.Fatalf("hot-path roots resolved to %d functions; config out of date: %v", len(roots), cfg.HotPathRoots)
	}

	// RunAudit is strictly harsher than Run: it also flags suppressions
	// that stopped suppressing anything, so stale //lint:ignore directives
	// fail the gate the same way live violations do.
	for _, d := range RunAudit(prog, cfg) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSuppressionAudit pins the audit pass: the suppress fixture carries one
// well-formed directive that suppresses nothing ("hotpath" on a line with no
// hotpath diagnostic), which must surface in audit mode and only there.
func TestSuppressionAudit(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "suppress"), FixturePrefix+"suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog := &Program{Fset: l.Fset(), Pkgs: []*Package{pkg}}
	cfg := FixtureConfig("suppress")

	base := Run(prog, cfg)
	audited := RunAudit(prog, cfg)

	var extra []Diagnostic
	for _, d := range audited {
		if d.Rule == "directive" && strings.Contains(d.Msg, "unused //lint:ignore") {
			extra = append(extra, d)
		}
	}
	if len(extra) != 1 {
		t.Fatalf("audit found %d unused-suppression diagnostics, want exactly 1: %v", len(extra), audited)
	}
	if !strings.Contains(extra[0].Msg, "hotpath") {
		t.Errorf("unused-suppression diagnostic names the wrong rule: %s", extra[0])
	}
	if len(audited) != len(base)+1 {
		t.Errorf("audit must add exactly the unused-directive finding: base %d, audited %d", len(base), len(audited))
	}
}
