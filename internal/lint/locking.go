package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// guardedByRe extracts the mutex name from a "guarded by <mu>" annotation in
// a field or var-block comment.
var guardedByRe = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// parseGuardedBy extracts the mutex name from a "guarded by <mu>" annotation
// in comment text; ok is false when no annotation is present.
func parseGuardedBy(text string) (mu string, ok bool) {
	m := guardedByRe.FindStringSubmatch(text)
	if m == nil {
		return "", false
	}
	return m[1], true
}

// guard records one annotated variable: field or package var obj must only be
// accessed by functions that lock mu.
type guard struct {
	obj types.Object // the guarded field or package var
	mu  types.Object // the mutex that must be held
}

// runLocking enforces "guarded by <mu>" annotations module-wide: a struct
// field or package variable carrying the annotation may only be read or
// written inside functions that lock the named mutex (functions whose name
// ends in "Locked" are exempt — their callers hold the lock).
func runLocking(_ *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		guards, bad := collectGuards(prog, pkg)
		diags = append(diags, bad...)
		if len(guards) == 0 {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			diags = append(diags, lockingInFunc(prog, pkg, fd, guards)...)
		}
	}
	return diags
}

// collectGuards finds every guarded-by annotation in the package: on struct
// fields (the mutex must be a sibling field) and on package var blocks (the
// mutex must be a package-level sync.Mutex/RWMutex).
func collectGuards(prog *Program, pkg *Package) (map[types.Object]*guard, []Diagnostic) {
	guards := make(map[types.Object]*guard)
	var diags []Diagnostic
	bad := func(node ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(node.Pos()),
			Rule: "locking",
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectFieldGuards(pkg, st, guards, bad)
				}
			}
			// A var block documented "guarded by <mu>" guards every variable
			// it declares (except the mutex itself, which may be declared in
			// the same block or elsewhere at package level).
			if gd.Tok.String() == "var" && gd.Doc != nil {
				if name, ok := parseGuardedBy(gd.Doc.Text()); ok {
					muObj := pkg.Types.Scope().Lookup(name)
					if muObj == nil || !isMutexType(muObj.Type()) {
						bad(gd, "guarded-by annotation names %q, which is not a package-level sync.Mutex/RWMutex", name)
						continue
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil || obj == muObj {
								continue
							}
							guards[obj] = &guard{obj: obj, mu: muObj}
						}
					}
				}
			}
		}
	}
	return guards, diags
}

// collectFieldGuards records guarded-by annotations on the fields of one
// struct type.
func collectFieldGuards(pkg *Package, st *ast.StructType, guards map[types.Object]*guard, bad func(ast.Node, string, ...any)) {
	muByName := make(map[string]types.Object)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
				muByName[name.Name] = obj
			}
		}
	}
	for _, field := range st.Fields.List {
		text := ""
		if field.Doc != nil {
			text += field.Doc.Text()
		}
		if field.Comment != nil {
			text += field.Comment.Text()
		}
		muName, ok := parseGuardedBy(text)
		if !ok {
			continue
		}
		muObj, ok := muByName[muName]
		if !ok {
			bad(field, "guarded-by annotation names %q, which is not a sibling sync.Mutex/RWMutex field", muName)
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil && obj != muObj {
				guards[obj] = &guard{obj: obj, mu: muObj}
			}
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockingInFunc reports guarded accesses in one function that does not lock
// the corresponding mutex anywhere in its body.
func lockingInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, guards map[types.Object]*guard) []Diagnostic {
	name := fd.Name.Name
	if len(name) > 6 && name[len(name)-6:] == "Locked" {
		return nil // the caller holds the lock by convention
	}
	locked := lockedMutexes(pkg, fd.Body)
	skip := skippedIdents(fd)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var obj types.Object
		switch node := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[node]; ok && sel.Kind() == types.FieldVal {
				obj = sel.Obj()
			}
		case *ast.Ident:
			if skip[node] {
				return true
			}
			obj = pkg.Info.Uses[node]
		}
		g, guarded := guards[obj]
		if !guarded || locked[g.mu] {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(n.Pos()),
			Rule: "locking",
			Msg: fmt.Sprintf("%s is guarded by %s, but %s never locks it (lock the mutex or rename the function *Locked)",
				g.obj.Name(), g.mu.Name(), name),
		})
		return true
	})
	return diags
}

// skippedIdents collects identifiers the Ident branch must not treat as
// accesses: composite-literal field keys (`T{field: v}` initialises a value
// nothing else can see yet) and the Sel of selector expressions (field
// accesses are handled once, at the SelectorExpr level).
func skippedIdents(fd *ast.FuncDecl) map[*ast.Ident]bool {
	skip := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						skip[id] = true
					}
				}
			}
		case *ast.SelectorExpr:
			skip[node.Sel] = true
		}
		return true
	})
	return skip
}

// lockedMutexes returns the set of mutex objects the function body locks
// (Lock or RLock on a field or package-level mutex).
func lockedMutexes(pkg *Package, body ast.Node) map[types.Object]bool {
	locked := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			if fs, ok := pkg.Info.Selections[recv]; ok && fs.Kind() == types.FieldVal {
				locked[fs.Obj()] = true
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[recv]; obj != nil {
				locked[obj] = true
			}
		}
		return true
	})
	return locked
}
