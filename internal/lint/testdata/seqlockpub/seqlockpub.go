// Package seqlockpub seeds stripe.Cell writer-protocol violations: writes
// with no enclosing critical section, stores outside a Begin/End bracket,
// and an unmatched Begin. The clean functions pin the two sanctioned shapes:
// a *Locked helper and a lock-in-body publisher.
package seqlockpub

import (
	"sync"

	"darwin/internal/stripe"
)

type shard struct {
	mu   sync.Mutex
	cell *stripe.Cell
}

// publishLocked is clean: the Locked suffix asserts the caller holds the
// owning mutex.
func (s *shard) publishLocked(hits, misses int64) {
	s.cell.Begin()
	s.cell.Add(0, hits)
	s.cell.Add(1, misses)
	s.cell.End()
}

// publish is clean: it locks its own mutex around a bracketed write.
func (s *shard) publish(hits int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cell.Begin()
	s.cell.Set(0, hits)
	s.cell.End()
}

// bulk is clean: Store brackets internally.
func (s *shard) bulk(vals []int64) {
	s.mu.Lock()
	s.cell.Store(vals)
	s.mu.Unlock()
}

func (s *shard) unguarded(hits int64) {
	s.cell.Begin() // want "outside any critical section"
	s.cell.Add(0, hits)
	s.cell.End()
}

func (s *shard) torn(hits int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cell.Add(0, hits) // want "outside a Begin/End write section"
}

func (s *shard) nestedStore(vals []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cell.Begin()
	s.cell.Store(vals) // want "Store inside a Begin/End section"
	s.cell.End()
}

func (s *shard) leaky(hits int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cell.Begin() // want "without a matching End"
	s.cell.Add(0, hits)
}

func (s *shard) read(dst []int64) {
	s.cell.Snapshot(dst)
}
