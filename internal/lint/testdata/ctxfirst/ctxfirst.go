// Package ctxfirst is a darwinlint golden fixture for the context-first rule
// on exported blocking functions.
package ctxfirst

import (
	"context"
	"net/http"
	"sync"
	"time"
)

func BadSleep(d time.Duration) {
	time.Sleep(d) /* want "time.Sleep. but takes no context.Context" */
}

func BadWait() {
	var wg sync.WaitGroup
	wg.Wait() /* want "WaitGroup.Wait. but takes no context.Context" */
}

func BadOrder(n int, ctx context.Context) { /* want "context.Context must be the first parameter" */
	_ = n
}

func GoodDo(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

func internalWait() { // unexported: the rule only covers the package API
	var wg sync.WaitGroup
	wg.Wait()
}

type handler struct{}

// ServeHTTP is exempt: handlers receive their context inside *http.Request.
func (handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond)
}
