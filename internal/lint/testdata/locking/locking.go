// Package locking is a darwinlint golden fixture for guarded-by annotations
// on struct fields and package var blocks.
package locking

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running count; guarded by mu.
	n int
}

func newCounter() *counter {
	return &counter{n: 1} // composite-literal initialisation is not an access
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) bad() int {
	return c.n /* want "n is guarded by mu" */
}

func (c *counter) addLocked(d int) {
	c.n += d // *Locked suffix: the caller holds mu
}

// registry memoises lookups across goroutines. Guarded by regMu.
var (
	regMu sync.Mutex
	reg   = map[string]int{}
)

func lookup(k string) int {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[k]
}

func badLookup(k string) int {
	return reg[k] /* want "reg is guarded by regMu" */
}

type broken struct {
	// x carries a dangling annotation; guarded by nosuch.
	x int /* want "guarded-by annotation names" */
}
