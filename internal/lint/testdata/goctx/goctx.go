// Package goctx seeds goroutine leaks: spawns with no visible termination
// path. The clean spawns pin each accepted signal: context use, select,
// range-over-channel, and WaitGroup.Done.
package goctx

import (
	"context"
	"sync"
)

func tick() {}

func work() {}

func runForever() {
	for {
		work()
	}
}

func Leak() {
	go func() { // want "no termination path"
		for {
			tick()
		}
	}()
}

func LeakNamed() {
	go runForever() // want "no termination path"
}

// WatchCtx is clean: the body consults its context.
func WatchCtx(ctx context.Context, reload chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-reload:
				work()
			}
		}
	}()
}

// Drain is clean: ranging over a channel ends when the channel closes.
func Drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// Tracked is clean: the WaitGroup ties the goroutine to a join point.
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}
