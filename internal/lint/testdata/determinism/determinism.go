// Package determinism is a darwinlint golden fixture: each marked line must
// produce the matching diagnostic, unmarked lines must stay clean.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() /* want "wall-clock time.Now" */
}

func wallElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) /* want "wall-clock time.Since" */
}

func globalRand() int {
	return rand.Intn(10) /* want "process-global rand.Intn" */
}

func seededRandOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) /* want "append to keys under map iteration" */
	}
	return keys
}

func sortedKeysOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func leakFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v /* want "order-dependent accumulation into sum" */
	}
	return sum
}

func intSumOK(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func leakPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) /* want "fmt.Println under map iteration" */
	}
}

func leakSink(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) /* want "ordered output via sb.WriteString" */
	}
	return sb.String()
}

func localSinkOK(m map[string]int) {
	for k := range m {
		var sb strings.Builder
		sb.WriteString(k)
		_ = sb.String()
	}
}
