// Package hotpath is a darwinlint golden fixture for the hot-path allocation
// rule: the configured roots are H.Serve and the Ev.Hit interface method, so
// every function below except cold() is on the hot path.
package hotpath

import (
	"container/list"
	"fmt"
)

// Ev mirrors the cache's Eviction interface; the fixture root Ev.Hit must
// fan out to the concrete implementation.
type Ev interface {
	Hit(id uint64) bool
}

// ListEv implements Ev on container/list, which is banned on the hot path.
type ListEv struct {
	l *list.List
}

// Hit is reachable via the Ev.Hit interface root.
func (e *ListEv) Hit(id uint64) bool {
	e.l.PushFront(id) /* want "container/list" */
	return true
}

// H mirrors the Hierarchy shape.
type H struct {
	ev Ev
	n  int
}

// Serve is a configured hot-path root.
func (h *H) Serve(id uint64) string {
	if h.ev.Hit(id) {
		return describe(id)
	}
	get := func() int { return h.n } /* want "closure captures h" */
	_ = get()
	return "miss:" + suffix(id) /* want "string concatenation allocates" */
}

func describe(id uint64) string {
	return fmt.Sprintf("obj-%d", id) /* want "fmt.Sprintf allocates" */
}

func suffix(id uint64) string {
	s := "x"
	s += "y" /* want "string concatenation allocates" */
	return s
}

// cold is not reachable from any root; its allocations are fine.
func cold() string {
	return fmt.Sprintf("cold-%d", 1)
}
