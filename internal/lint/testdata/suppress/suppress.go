// Package suppress is a darwinlint golden fixture for //lint:ignore
// directive handling: well-formed directives on the same or preceding line
// suppress their rule, wrong rules and malformed directives do not.
package suppress

import "time"

func suppressedAbove() int64 {
	//lint:ignore determinism fixture demonstrates sanctioned wall-clock use
	return time.Now().Unix()
}

func suppressedSameLine() int64 {
	return time.Now().Unix() //lint:ignore determinism same-line directives also suppress
}

func wrongRule() int64 {
	//lint:ignore hotpath a directive for another rule does not suppress
	return time.Now().Unix() /* want "wall-clock time.Now" */
}

func malformed() int64 {
	return time.Now().Unix() /* want "wall-clock time.Now" */ /* want "malformed //lint:ignore directive" */ //lint:ignore determinism
}
