// Package persistio seeds durability violations: raw file emission that
// bypasses persist.WriteFileAtomic, and a panic in decoder code. Read-only
// opens stay clean.
package persistio

import "os"

func SaveTorn(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile bypasses persist.WriteFileAtomic"
}

func CreateTorn(path string) error {
	f, err := os.Create(path) // want "os.Create bypasses persist.WriteFileAtomic"
	if err != nil {
		return err
	}
	return f.Close()
}

func AppendTorn(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644) // want "os.OpenFile with write flags"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadOK is clean: a read-only open cannot tear anything.
func ReadOK(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	return f.Close()
}

func Decode(frame []byte) (byte, error) {
	if len(frame) < 4 {
		panic("short frame") // want "panic in a decoder package"
	}
	return frame[0], nil
}
