// Package atomicmix seeds memory-discipline violations: a field updated
// through sync/atomic but also read plainly, and value copies of a struct
// that embeds a mutex (assignment, range, and call-argument shapes).
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type C struct {
	n  uint64
	mu sync.Mutex
	v  int
}

// IncAtomic is clean: the canonical atomic update.
func IncAtomic(c *C) {
	atomic.AddUint64(&c.n, 1)
}

func ReadPlain(c *C) uint64 {
	return c.n // want "accessed atomically elsewhere"
}

func CopyDeref(c *C) int {
	x := *c // want "copies C which contains sync.Mutex"
	return x.v
}

func RangeCopy(cs []C) int {
	total := 0
	for _, c := range cs { // want "range copies C"
		total += c.v
	}
	return total
}

func PassByValue(c *C) {
	sink(*c) // want "passing by value copies C"
}

func sink(C) {}

// ByPointer is clean: sharing the struct by pointer copies nothing.
func ByPointer(cs []*C) int {
	total := 0
	for _, c := range cs {
		total += c.v
	}
	return total
}
