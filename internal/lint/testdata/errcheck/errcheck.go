// Package errcheck is a darwinlint golden fixture for the discarded-error
// rule.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func multi() (int, error) { return 1, nil }

func bad() {
	fail() /* want "discarded error from fail" */
}

func badMulti() {
	multi() /* want "discarded error from multi" */
}

func okHandled() error {
	return fail()
}

func okExplicit() {
	_ = fail()
}

func okDeferred() {
	defer fail()
}

func okBuilder() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x=%d", 1)
	sb.WriteString("y")
	return sb.String()
}
