// Package sharding is a darwinlint golden fixture for the sharded cache
// data plane: per-shard guarded-by annotations must hold under local shard
// aliases, and the shard-routing Serve path is a hot-path root, so routing
// must stay free of fmt and allocation.
package sharding

import (
	"fmt"
	"sync"
)

// shard is one partition of the engine.
type shard struct {
	mu sync.Mutex
	// n is the shard's request count; guarded by mu.
	n int64
}

// ShardedCache routes requests across shards by id hash.
type ShardedCache struct {
	shards []shard
}

// Serve is the configured hot-path root: route, lock the owning shard, count.
func (s *ShardedCache) Serve(id uint64) int64 {
	sh := &s.shards[s.route(id)]
	sh.mu.Lock()
	sh.n++
	v := sh.n
	sh.mu.Unlock()
	return v
}

// route is on the hot path through Serve; the fmt call must be reported.
func (s *ShardedCache) route(id uint64) int {
	_ = fmt.Sprintf("routing %d", id) /* want "fmt.Sprintf allocates" */
	return int(id) % len(s.shards)
}

// skipLock reads a guarded shard field without taking the shard mutex.
func (s *ShardedCache) skipLock(i int) int64 {
	return s.shards[i].n /* want "n is guarded by mu" */
}

// totalLocked is exempt by the *Locked suffix: the caller holds every lock.
func (s *ShardedCache) totalLocked() int64 {
	var t int64
	for i := range s.shards {
		t += s.shards[i].n
	}
	return t
}
