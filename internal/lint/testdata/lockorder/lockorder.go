// Package lockorder seeds lock-discipline violations: blocking operations
// under a held mutex (direct and through a static callee), double-locks, and
// a lock-order cycle. The clean functions pin the walker's branch handling:
// unlock-then-block and unlock-in-branch must not fire.
package lockorder

import (
	"sync"
	"time"
)

type S struct {
	mu    sync.Mutex
	ready chan struct{}
	n     int
}

func (s *S) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
	s.mu.Unlock()
}

func (s *S) sendUnderDeferredLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready <- struct{}{} // want "held across channel send"
}

func (s *S) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "held across select"
	case <-s.ready: // want "held across channel receive"
		s.n++
	}
}

func (s *S) transitiveBlock() {
	s.mu.Lock()
	s.flush() // want "held across call to flush, which blocks"
	s.mu.Unlock()
}

func (s *S) flush() {
	<-s.ready
}

func (s *S) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "locked while already held"
	s.mu.Unlock()
}

// unlockThenBlock is clean: the walker must see the unlock before the
// receive (singleflight's unlock-then-wait shape).
func (s *S) unlockThenBlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	<-s.ready
}

// earlyReturn is clean: each branch exit releases the lock, so the
// fall-through receive runs unlocked.
func (s *S) earlyReturn(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	<-s.ready
}

type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) lockAB() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want "lock-order cycle: a -> b -> a"
	p.a.Unlock()
	p.b.Unlock()
}
