package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// runPersistIO enforces the durability layer's two boundaries:
//
//   - Outside the exempt persistence packages (which own the raw file
//     handles: the atomic-write helper itself and the append-only journal),
//     durable file emission must route through persist.WriteFileAtomic —
//     os.WriteFile, os.Create, and os.OpenFile with write flags all leave a
//     torn file behind a crash, which the PR-6 recovery invariants assume
//     cannot happen.
//   - Inside the decoder packages (the on-disk-format readers), panic is
//     forbidden: arbitrary corrupt bytes must surface as typed errors, the
//     contract the decoder fuzz targets enforce dynamically and this rule
//     enforces for every new code path statically.
func runPersistIO(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		writeScoped := hasPrefixPath(pkg.ImportPath, cfg.PersistIOPkgs) &&
			!hasPrefixPath(pkg.ImportPath, cfg.PersistIOExempt)
		decodeScoped := hasPrefixPath(pkg.ImportPath, cfg.DecoderPkgs)
		if !writeScoped && !decodeScoped {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if writeScoped {
					if path, name, ok := pkgFuncCall(pkg, call); ok && path == "os" {
						var msg string
						switch name {
						case "WriteFile":
							msg = "os.WriteFile bypasses persist.WriteFileAtomic; a crash here leaves a torn file"
						case "Create":
							msg = "os.Create bypasses persist.WriteFileAtomic; a crash here leaves a torn file"
						case "OpenFile":
							if openFileWrites(pkg, call) {
								msg = "os.OpenFile with write flags bypasses persist.WriteFileAtomic; a crash here leaves a torn file"
							}
						}
						if msg != "" {
							diags = append(diags, Diagnostic{
								Pos:  prog.Fset.Position(call.Pos()),
								Rule: "persistio",
								Msg:  msg,
							})
						}
					}
				}
				if decodeScoped {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
						if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
							diags = append(diags, Diagnostic{
								Pos:  prog.Fset.Position(call.Pos()),
								Rule: "persistio",
								Msg:  "panic in a decoder package; corrupt input must surface as a typed error, never a crash",
							})
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// openFileWrites reports whether an os.OpenFile call's flag argument enables
// writing. A constant-folded flag equal to os.O_RDONLY (0) is read-only;
// anything else — including flags the type-checker cannot fold — is treated
// as a write.
func openFileWrites(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true
	}
	v, exact := constant.Int64Val(tv.Value)
	return !exact || v != 0
}
