package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"darwin/internal/persist"
)

// cacheVersion invalidates every stored cache when the analyzer set or the
// cache format changes; bump it alongside any analyzer semantics change.
const cacheVersion = "darwinlint-cache-v1"

// The cache is whole-tree and all-or-nothing: the whole-program analyzers
// (hotpath's call graph, lockorder's blocking propagation, goctx) make
// per-package reuse unsound — an edit in one package can change diagnostics
// in another. Hashing every source file is still ~100x cheaper than
// type-checking them, which is where a cold run spends its time.

// cacheFile is the on-disk shape.
type cacheFile struct {
	Key         string           `json:"key"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// CacheKey derives a content hash over everything that can change a lint
// run's output: the cache format version, the configuration, go.mod, and
// every non-test .go file the loader would read (same skip rules as
// LoadAll). File paths are hashed relative to root so moving the checkout
// does not invalidate the cache.
func CacheKey(root string, cfg *Config) (string, error) {
	h := sha256.New()
	io.WriteString(h, cacheVersion)
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return "", err
	}
	h.Write(cfgJSON)

	var files []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if name == "go.mod" || isSourceFile(d) {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return "", err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// LoadCache returns the cached diagnostics if path holds a cache written
// for exactly this key. Any read, decode, or key mismatch is a cache miss,
// never an error: the caller falls back to a cold run.
func LoadCache(path, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil || cf.Key != key {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(cf.Diagnostics))
	for _, jd := range cf.Diagnostics {
		d := Diagnostic{Rule: jd.Rule, Msg: jd.Message}
		d.Pos.Filename = jd.File
		d.Pos.Line = jd.Line
		d.Pos.Column = jd.Column
		diags = append(diags, d)
	}
	return diags, true
}

// SaveCache stores diagnostics under key, atomically — a partially-written
// cache would otherwise poison every later warm run.
func SaveCache(path, key string, diags []Diagnostic) error {
	cf := cacheFile{Key: key, Diagnostics: make([]jsonDiagnostic, 0, len(diags))}
	for _, d := range diags {
		cf.Diagnostics = append(cf.Diagnostics, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
