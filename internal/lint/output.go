package lint

import (
	"encoding/json"
)

// jsonDiagnostic is the machine-readable shape of a Diagnostic: stable field
// names for scripting against `darwinlint -json`.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// RenderJSON serializes diagnostics as a JSON array (never null: an empty
// run renders as []).
func RenderJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Minimal SARIF 2.1.0 document: one run, one rule entry per distinct rule
// that fired, one result per diagnostic. Enough structure for code-scanning
// UIs to ingest without any fields they would reject.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID string `json:"id"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// RenderSARIF serializes diagnostics as a SARIF 2.1.0 log.
func RenderSARIF(diags []Diagnostic) ([]byte, error) {
	seen := make(map[string]bool)
	var rules []sarifRule
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !seen[d.Rule] {
			seen[d.Rule] = true
			rules = append(rules, sarifRule{ID: d.Rule})
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "darwinlint",
				InformationURI: "https://example.invalid/darwinlint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
