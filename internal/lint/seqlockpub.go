package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// runSeqlockPub enforces the stripe.Cell writer protocol module-wide: the
// seqlock's coherence contract (readers never observe a torn counter block,
// so invariants like hits+misses==requests hold in every snapshot) depends
// on writers being externally serialized and bracketing their stores.
//
//   - Writer calls (Begin/End/Add/Set/Store) must run inside a critical
//     section: the enclosing function locks a mutex in its body or is named
//     *Locked (its caller holds the lock). Readers use Snapshot, which needs
//     no lock — Cell's fields are unexported, so snapshot APIs are the only
//     way out of the package anyway.
//   - Add/Set must sit between Begin and End on the same receiver; Store
//     brackets internally and must not nest inside an open section; an
//     unmatched Begin leaves the sequence number odd and Snapshot spins
//     forever.
//
// The bracketing check walks calls in source order, which is exact for the
// straight-line publication helpers this repo uses; branch-dependent
// bracketing should be rewritten straight-line rather than suppressed.
// The package that declares Cell is exempt — it implements the protocol.
func runSeqlockPub(cfg *Config, prog *Program) []Diagnostic {
	if len(cfg.SeqlockPkgs) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.SeqlockPkgs) {
			continue
		}
		if strings.HasSuffix(pkg.ImportPath, "internal/stripe") {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			diags = append(diags, seqlockInFunc(prog, pkg, fd.Name.Name, fd.Body)...)
		}
	}
	return diags
}

// cellMethod resolves a call to a stripe.Cell method, returning the method
// name and the receiver expression text.
func cellMethod(pkg *Package, call *ast.CallExpr) (method, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, hasSel := pkg.Info.Selections[sel]
	if !hasSel || s.Kind() != types.MethodVal {
		return "", "", false
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	if named.Obj().Name() != "Cell" || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/stripe") {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

// seqlockInFunc checks one function's Cell writer calls: critical-section
// requirement plus Begin/End bracketing in source order.
func seqlockInFunc(prog *Program, pkg *Package, name string, body *ast.BlockStmt) []Diagnostic {
	type writerCall struct {
		call   *ast.CallExpr
		method string
		recv   string
	}
	var writers []writerCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, recv, ok := cellMethod(pkg, call)
		if !ok {
			return true
		}
		switch method {
		case "Begin", "End", "Add", "Set", "Store":
			writers = append(writers, writerCall{call: call, method: method, recv: recv})
		}
		return true
	})
	if len(writers) == 0 {
		return nil
	}

	var diags []Diagnostic
	report := func(call *ast.CallExpr, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(call.Pos()),
			Rule: "seqlockpub",
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	locked := strings.HasSuffix(name, "Locked") || len(lockedMutexes(pkg, body)) > 0
	if !locked {
		report(writers[0].call,
			"stripe.Cell writer %s outside any critical section; hold the owning mutex in %s or move the write into a *Locked helper",
			writers[0].method, name)
	}

	open := make(map[string]*ast.CallExpr)
	for _, wc := range writers {
		switch wc.method {
		case "Begin":
			if _, isOpen := open[wc.recv]; isOpen {
				report(wc.call, "Cell.Begin while a write section is already open on %s", wc.recv)
				continue
			}
			open[wc.recv] = wc.call
		case "End":
			if _, isOpen := open[wc.recv]; !isOpen {
				report(wc.call, "Cell.End without a matching Begin")
				continue
			}
			delete(open, wc.recv)
		case "Add", "Set":
			if _, isOpen := open[wc.recv]; !isOpen {
				report(wc.call, "Cell.%s outside a Begin/End write section; readers may observe a torn update", wc.method)
			}
		case "Store":
			if _, isOpen := open[wc.recv]; isOpen {
				report(wc.call, "Cell.Store inside a Begin/End section; Store opens its own")
			}
		}
	}
	// Report leaked sections in source order (map iteration would be
	// nondeterministic).
	for _, wc := range writers {
		if open[wc.recv] == wc.call {
			report(wc.call, "Cell.Begin without a matching End leaves the seqlock odd; Snapshot would spin forever")
		}
	}
	return diags
}
