package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall resolves a call to a package-level function accessed through a
// package qualifier (pkg.Fn(...)), returning the package path and name.
func pkgFuncCall(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootObject strips selectors, indexing, stars and parens down to the base
// identifier of expr and returns its object (nil when the base is not a
// resolved identifier).
func rootObject(pkg *Package, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// namedOf unwraps pointers to the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
