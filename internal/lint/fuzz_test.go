package lint

import (
	"strings"
	"testing"
)

// FuzzParseIgnoreDirective hardens the suppression parser: arbitrary comment
// text must never produce an inconsistent parse (a match with no verdict, a
// well-formed directive with unknown rules or an empty reason).
func FuzzParseIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore determinism fixture demonstrates sanctioned wall-clock use")
	f.Add("//lint:ignore lockorder,goctx shared reason")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore *")
	f.Add("//lint:ignore * blanket reason")
	f.Add("//lint:ignore unknownrule why")
	f.Add("//lint:ignore determinism,")
	f.Add("// not a directive")
	f.Add("//lint:ignoredeterminism glued")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, matched, errMsg := parseIgnoreDirective(text)
		if !matched {
			if len(rules) != 0 || reason != "" || errMsg != "" {
				t.Fatalf("unmatched text %q returned content: rules=%v reason=%q err=%q", text, rules, reason, errMsg)
			}
			return
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("matched text %q without the directive prefix", text)
		}
		if errMsg != "" {
			return // malformed: reported as a diagnostic, nothing else to hold
		}
		if len(rules) == 0 {
			t.Fatalf("well-formed directive %q parsed zero rules", text)
		}
		for _, r := range rules {
			if r != "*" && !knownRules[r] {
				t.Fatalf("well-formed directive %q passed unknown rule %q", text, r)
			}
		}
		if strings.TrimSpace(reason) == "" {
			t.Fatalf("well-formed directive %q has an empty reason", text)
		}
	})
}

// FuzzParseGuardedBy hardens the guarded-by annotation parser: any extracted
// mutex name must be a plausible identifier (regexp word characters only,
// never empty).
func FuzzParseGuardedBy(f *testing.F) {
	f.Add("// hits, guarded by mu")
	f.Add("// Guarded By statsMu.")
	f.Add("// nothing to see here")
	f.Add("// guarded by ")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		mu, ok := parseGuardedBy(text)
		if !ok {
			if mu != "" {
				t.Fatalf("no-match on %q still returned name %q", text, mu)
			}
			return
		}
		if mu == "" {
			t.Fatalf("match on %q returned an empty mutex name", text)
		}
		for _, r := range mu {
			wordChar := r == '_' || ('0' <= r && r <= '9') ||
				('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
			if !wordChar {
				t.Fatalf("mutex name %q from %q contains non-identifier rune %q", mu, text, r)
			}
		}
	})
}
