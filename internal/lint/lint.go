// Package lint is darwinlint: a repo-specific static-analysis suite built
// only on the standard library's go/parser, go/ast, go/types and go/token.
// It machine-checks the invariants Darwin's results depend on:
//
//   - determinism: no wall-clock reads, no global math/rand, and no map
//     iteration feeding ordered output inside the replay-critical packages —
//     every figure must be bit-reproducible from (trace, seed);
//   - hotpath: no fmt, string concatenation, closure capture or
//     container/list in functions reachable from the cache request loop
//     (Hierarchy.Serve / Sharded.Serve / Eviction.Hit), protecting the
//     0-alloc serve and shard-routing paths;
//   - locking: fields and package vars annotated "guarded by <mu>" are only
//     touched by functions that lock that mutex;
//   - errcheck: no silently discarded error returns in the experiment and
//     server packages;
//   - ctxfirst: exported blocking functions in the concurrency packages take
//     a context.Context as their first parameter.
//
// A diagnostic on line N is suppressed by a directive on line N or N-1:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; malformed directives are themselves reported.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer (determinism, hotpath, locking, errcheck,
	// ctxfirst, directive).
	Rule string
	// Msg describes the violation.
	Msg string
}

// String renders the diagnostic in file:line:col: [rule] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Config scopes each rule to the packages where its invariant holds. Paths
// are import-path prefixes ("darwin/internal/cache" covers the package and
// any subpackages).
type Config struct {
	// DeterminismPkgs are the replay-critical packages: wall-clock reads,
	// global math/rand and order-sensitive map iteration are forbidden there.
	DeterminismPkgs []string
	// HotPathRoots are the entry points of the allocation-free request loop,
	// written "pkgpath.Func" or "pkgpath.Type.Method"
	// (e.g. "darwin/internal/cache.Hierarchy.Serve").
	HotPathRoots []string
	// ErrcheckPkgs are packages where discarding an error return is an error.
	ErrcheckPkgs []string
	// CtxFirstPkgs are packages whose exported blocking functions must take a
	// context.Context first.
	CtxFirstPkgs []string
}

// DefaultConfig returns the repository's enforced configuration: the
// determinism boundary, the cache hot path, and the concurrency packages.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: []string{
			"darwin/internal/cache",
			"darwin/internal/tracegen",
			"darwin/internal/trace",
			"darwin/internal/exp",
			"darwin/internal/bandit",
			"darwin/internal/neural",
			"darwin/internal/cluster",
		},
		HotPathRoots: []string{
			"darwin/internal/cache.Hierarchy.Serve",
			"darwin/internal/cache.Sharded.Serve",
			"darwin/internal/cache.Eviction.Hit",
			"darwin/internal/server.Proxy.serveLocal",
			"darwin/internal/server.writeBody",
		},
		ErrcheckPkgs: []string{
			"darwin/internal/breaker",
			"darwin/internal/diskcache",
			"darwin/internal/exp",
			"darwin/internal/persist",
			"darwin/internal/server",
		},
		CtxFirstPkgs: []string{
			"darwin/internal/par",
			"darwin/internal/server",
		},
	}
}

// FixturePrefix is the import-path prefix fixture packages are loaded under,
// so per-fixture configs can scope rules to them.
const FixturePrefix = "darwin/internal/lint/testdata/"

// FixtureConfig returns the configuration that enables exactly the rule the
// named testdata fixture exercises (locking always runs; it only fires on
// guarded-by annotations, which other fixtures lack). Shared between the
// golden-fixture tests and darwinlint's -fixture mode.
func FixtureConfig(name string) Config {
	path := FixturePrefix + name
	switch name {
	case "determinism", "suppress":
		return Config{DeterminismPkgs: []string{path}}
	case "hotpath":
		return Config{HotPathRoots: []string{path + ".H.Serve", path + ".Ev.Hit"}}
	case "sharding":
		// The sharded-engine fixture: per-shard guarded-by locking plus the
		// shard-routing Serve path under the hot-path allocation rule.
		return Config{HotPathRoots: []string{path + ".ShardedCache.Serve"}}
	case "errcheck":
		return Config{ErrcheckPkgs: []string{path}}
	case "ctxfirst":
		return Config{CtxFirstPkgs: []string{path}}
	}
	return Config{}
}

// An analyzer inspects a whole Program and reports diagnostics.
type analyzer struct {
	name string
	run  func(cfg *Config, prog *Program) []Diagnostic
}

// analyzers lists every rule in execution order.
func analyzers() []analyzer {
	return []analyzer{
		{"determinism", runDeterminism},
		{"hotpath", runHotPath},
		{"locking", runLocking},
		{"errcheck", runErrcheck},
		{"ctxfirst", runCtxFirst},
	}
}

// Run executes every analyzer over prog, applies //lint:ignore suppressions,
// and returns the surviving diagnostics sorted by position.
func Run(prog *Program, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers() {
		diags = append(diags, a.run(&cfg, prog)...)
	}
	sup := collectSuppressions(prog)
	diags = append(diags, sup.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "directive" && sup.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept
}

// hasPrefixPath reports whether importPath is path or a subpackage of any
// entry in prefixes.
func hasPrefixPath(importPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// suppressions maps file:line to the set of rules ignored there.
type suppressions struct {
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

// collectSuppressions scans every comment group for //lint:ignore directives.
func collectSuppressions(prog *Program) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Diagnostic{
							Pos:  pos,
							Rule: "directive",
							Msg:  "malformed //lint:ignore directive: need a rule name and a reason",
						})
						continue
					}
					if s.byLine[pos.Filename] == nil {
						s.byLine[pos.Filename] = make(map[int][]string)
					}
					rules := strings.Split(fields[0], ",")
					s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], rules...)
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by a directive on its own line or
// the line directly above it.
func (s *suppressions) suppressed(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == d.Rule || rule == "*" {
				return true
			}
		}
	}
	return false
}
