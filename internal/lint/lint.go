// Package lint is darwinlint: a repo-specific static-analysis suite built
// only on the standard library's go/parser, go/ast, go/types and go/token.
// It machine-checks the invariants Darwin's results depend on:
//
//   - determinism: no wall-clock reads, no global math/rand, and no map
//     iteration feeding ordered output inside the replay-critical packages —
//     every figure must be bit-reproducible from (trace, seed);
//   - hotpath: no fmt, string concatenation, closure capture or
//     container/list in functions reachable from the cache request loop
//     (Hierarchy.Serve / Sharded.Serve / Eviction.Hit), protecting the
//     0-alloc serve and shard-routing paths;
//   - locking: fields and package vars annotated "guarded by <mu>" are only
//     touched by functions that lock that mutex;
//   - errcheck: no silently discarded error returns in the experiment and
//     server packages;
//   - ctxfirst: exported blocking functions in the concurrency packages take
//     a context.Context as their first parameter;
//   - lockorder: no mutex held across a blocking operation (origin fetch,
//     channel op, fsync, time.Sleep), no double-lock of one mutex, and no
//     lock-order cycles between lock classes;
//   - seqlockpub: stripe.Cell writer calls run inside a critical section and
//     bracket updates with Begin/End (or the bulk Store), so the
//     hits+misses==requests snapshot coherence invariant holds;
//   - atomicmix: no field accessed both through sync/atomic and plainly, and
//     no value copies of structs containing mutexes or seqlock cells;
//   - persistio: durable file emission outside the persistence layer routes
//     through persist.WriteFileAtomic, and decoder packages never panic on
//     bad input;
//   - goctx: goroutines spawned in the serving tier have a visible
//     termination path (ctx use, channel op, or WaitGroup.Done).
//
// A diagnostic on line N is suppressed by a directive on line N or N-1:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; malformed directives (including unknown rule
// names) are themselves reported, and RunAudit additionally reports
// directives that suppressed nothing.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer (determinism, hotpath, locking, errcheck,
	// ctxfirst, lockorder, seqlockpub, atomicmix, persistio, goctx,
	// directive).
	Rule string
	// Msg describes the violation.
	Msg string
}

// String renders the diagnostic in file:line:col: [rule] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Config scopes each rule to the packages where its invariant holds. Paths
// are import-path prefixes ("darwin/internal/cache" covers the package and
// any subpackages).
type Config struct {
	// DeterminismPkgs are the replay-critical packages: wall-clock reads,
	// global math/rand and order-sensitive map iteration are forbidden there.
	DeterminismPkgs []string
	// HotPathRoots are the entry points of the allocation-free request loop,
	// written "pkgpath.Func" or "pkgpath.Type.Method"
	// (e.g. "darwin/internal/cache.Hierarchy.Serve").
	HotPathRoots []string
	// ErrcheckPkgs are packages where discarding an error return is an error.
	ErrcheckPkgs []string
	// CtxFirstPkgs are packages whose exported blocking functions must take a
	// context.Context first.
	CtxFirstPkgs []string
	// LockOrderPkgs are packages whose mutex regions are checked for blocking
	// calls under a held lock, double-locks, and lock-order cycles.
	LockOrderPkgs []string
	// SeqlockPkgs are packages where stripe.Cell writer-protocol use
	// (Begin/End bracketing inside a critical section) is enforced. The
	// package declaring Cell itself is always exempt — it is the protocol's
	// implementation.
	SeqlockPkgs []string
	// AtomicMixPkgs are packages checked for fields accessed both through
	// sync/atomic and plainly, and for value copies of structs containing
	// mutexes or seqlock cells.
	AtomicMixPkgs []string
	// PersistIOPkgs are packages whose durable file emission must route
	// through persist.WriteFileAtomic; PersistIOExempt carves out the
	// persistence layer itself, which owns the raw file handles.
	PersistIOPkgs   []string
	PersistIOExempt []string
	// DecoderPkgs are the on-disk-format decoder packages: panicking there is
	// forbidden — corrupt bytes must surface as typed errors.
	DecoderPkgs []string
	// GoCtxPkgs are packages whose go statements must spawn goroutines with a
	// visible termination path (ctx use, channel op, or WaitGroup.Done).
	GoCtxPkgs []string
}

// DefaultConfig returns the repository's enforced configuration: the
// determinism boundary, the cache hot path, the concurrency packages, and
// the module-wide concurrency/durability rules.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: []string{
			"darwin/internal/cache",
			"darwin/internal/tracegen",
			"darwin/internal/trace",
			"darwin/internal/exp",
			"darwin/internal/bandit",
			"darwin/internal/neural",
			"darwin/internal/cluster",
			"darwin/internal/gossip",
		},
		HotPathRoots: []string{
			"darwin/internal/cache.Hierarchy.Serve",
			"darwin/internal/cache.Sharded.Serve",
			"darwin/internal/cache.Eviction.Hit",
			"darwin/internal/server.Proxy.serveLocal",
			"darwin/internal/server.Proxy.fetchPeer",
			"darwin/internal/server.writeBody",
			"darwin/internal/lb.Ring.RouteReplicated",
			"darwin/internal/server.Front.pick",
		},
		ErrcheckPkgs: []string{
			"darwin/internal/breaker",
			"darwin/internal/diskcache",
			"darwin/internal/exp",
			"darwin/internal/gossip",
			"darwin/internal/lb",
			"darwin/internal/persist",
			"darwin/internal/server",
		},
		CtxFirstPkgs: []string{
			"darwin/internal/par",
			"darwin/internal/server",
		},
		// The concurrency rules hold module-wide: every mutex region, every
		// seqlock publication, every atomic field.
		LockOrderPkgs: []string{"darwin"},
		SeqlockPkgs:   []string{"darwin"},
		AtomicMixPkgs: []string{"darwin"},
		// Durable emission goes through persist.WriteFileAtomic everywhere
		// except the two packages that implement the durability layer and
		// legitimately hold raw file handles.
		PersistIOPkgs:   []string{"darwin"},
		PersistIOExempt: []string{"darwin/internal/persist", "darwin/internal/diskcache"},
		DecoderPkgs: []string{
			"darwin/internal/persist",
			"darwin/internal/diskcache",
			"darwin/internal/core",
		},
		GoCtxPkgs: []string{
			"darwin/internal/server",
			"darwin/internal/par",
			"darwin/internal/core",
			"darwin/internal/gossip",
			"darwin/internal/lb",
			"darwin/internal/cluster",
			"darwin/cmd/darwin-proxy",
			"darwin/cmd/darwin-front",
			"darwin/cmd/origin",
		},
	}
}

// FixturePrefix is the import-path prefix fixture packages are loaded under,
// so per-fixture configs can scope rules to them.
const FixturePrefix = "darwin/internal/lint/testdata/"

// FixtureConfig returns the configuration that enables exactly the rule the
// named testdata fixture exercises (locking always runs; it only fires on
// guarded-by annotations, which other fixtures lack). Shared between the
// golden-fixture tests and darwinlint's -fixture mode.
func FixtureConfig(name string) Config {
	path := FixturePrefix + name
	switch name {
	case "determinism", "suppress":
		return Config{DeterminismPkgs: []string{path}}
	case "hotpath":
		return Config{HotPathRoots: []string{path + ".H.Serve", path + ".Ev.Hit"}}
	case "sharding":
		// The sharded-engine fixture: per-shard guarded-by locking plus the
		// shard-routing Serve path under the hot-path allocation rule.
		return Config{HotPathRoots: []string{path + ".ShardedCache.Serve"}}
	case "errcheck":
		return Config{ErrcheckPkgs: []string{path}}
	case "ctxfirst":
		return Config{CtxFirstPkgs: []string{path}}
	case "lockorder":
		return Config{LockOrderPkgs: []string{path}}
	case "seqlockpub":
		return Config{SeqlockPkgs: []string{path}}
	case "atomicmix":
		return Config{AtomicMixPkgs: []string{path}}
	case "persistio":
		return Config{PersistIOPkgs: []string{path}, DecoderPkgs: []string{path}}
	case "goctx":
		return Config{GoCtxPkgs: []string{path}}
	}
	return Config{}
}

// An analyzer inspects a whole Program and reports diagnostics.
type analyzer struct {
	name string
	run  func(cfg *Config, prog *Program) []Diagnostic
}

// analyzers lists every rule in execution order.
func analyzers() []analyzer {
	return []analyzer{
		{"determinism", runDeterminism},
		{"hotpath", runHotPath},
		{"locking", runLocking},
		{"errcheck", runErrcheck},
		{"ctxfirst", runCtxFirst},
		{"lockorder", runLockOrder},
		{"seqlockpub", runSeqlockPub},
		{"atomicmix", runAtomicMix},
		{"persistio", runPersistIO},
		{"goctx", runGoCtx},
	}
}

// knownRules is every rule name a //lint:ignore directive may suppress; a
// directive naming anything else can never fire and is reported as
// malformed.
var knownRules = map[string]bool{
	"determinism": true,
	"hotpath":     true,
	"locking":     true,
	"errcheck":    true,
	"ctxfirst":    true,
	"lockorder":   true,
	"seqlockpub":  true,
	"atomicmix":   true,
	"persistio":   true,
	"goctx":       true,
}

// Run executes every analyzer over prog, applies //lint:ignore suppressions,
// and returns the surviving diagnostics sorted by position.
func Run(prog *Program, cfg Config) []Diagnostic {
	return run(prog, cfg, false)
}

// RunAudit is Run plus the suppression audit: every well-formed
// //lint:ignore directive that suppressed no diagnostic is stale and
// reported itself, so the suppression inventory can only shrink toward
// directives whose reasons still match the code.
func RunAudit(prog *Program, cfg Config) []Diagnostic {
	return run(prog, cfg, true)
}

func run(prog *Program, cfg Config, audit bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers() {
		diags = append(diags, a.run(&cfg, prog)...)
	}
	sup := collectSuppressions(prog)
	diags = append(diags, sup.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "directive" && sup.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	if audit {
		for _, dir := range sup.directives {
			if dir.used {
				continue
			}
			kept = append(kept, Diagnostic{
				Pos:  dir.pos,
				Rule: "directive",
				Msg: fmt.Sprintf("unused //lint:ignore %s suppression: no diagnostic here to suppress (stale; remove it)",
					strings.Join(dir.rules, ",")),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept
}

// hasPrefixPath reports whether importPath is path or a subpackage of any
// entry in prefixes.
func hasPrefixPath(importPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// directive is one well-formed //lint:ignore comment; used flips when it
// suppresses a diagnostic, and the audit reports the ones that never did.
type directive struct {
	pos   token.Position
	rules []string
	used  bool
}

// suppressions maps file:line to the directives active there.
type suppressions struct {
	byLine     map[string]map[int][]*directive
	directives []*directive
	malformed  []Diagnostic
}

// parseIgnoreDirective parses one comment's text. matched reports whether
// the comment is a //lint:ignore directive at all; when it is, rules (comma
// separated, "*" wildcard allowed) and the mandatory reason are returned,
// with errMsg non-empty when the directive is malformed (missing parts or an
// unknown rule name).
func parseIgnoreDirective(text string) (rules []string, reason string, matched bool, errMsg string) {
	rest, matched := strings.CutPrefix(text, "//lint:ignore")
	if !matched {
		return nil, "", false, ""
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", true, "need a rule name and a reason"
	}
	rules = strings.Split(fields[0], ",")
	for _, r := range rules {
		if r != "*" && !knownRules[r] {
			return rules, "", true, fmt.Sprintf("unknown rule %q", r)
		}
	}
	return rules, strings.Join(fields[1:], " "), true, ""
}

// collectSuppressions scans every comment group for //lint:ignore directives.
func collectSuppressions(prog *Program) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rules, _, matched, errMsg := parseIgnoreDirective(c.Text)
					if !matched {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					if errMsg != "" {
						s.malformed = append(s.malformed, Diagnostic{
							Pos:  pos,
							Rule: "directive",
							Msg:  "malformed //lint:ignore directive: " + errMsg,
						})
						continue
					}
					if s.byLine[pos.Filename] == nil {
						s.byLine[pos.Filename] = make(map[int][]*directive)
					}
					dir := &directive{pos: pos, rules: rules}
					s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], dir)
					s.directives = append(s.directives, dir)
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by a directive on its own line or
// the line directly above it, marking the matching directive used.
func (s *suppressions) suppressed(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			for _, rule := range dir.rules {
				if rule == d.Rule || rule == "*" {
					dir.used = true
					return true
				}
			}
		}
	}
	return false
}
