package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// runLockOrder enforces the module's lock discipline beyond single-mutex
// depth: no mutex may be held across a blocking operation (channel ops,
// select without default, time.Sleep, WaitGroup/Cond waits, fsync, HTTP
// round-trips, dial/listen), a mutex already held may not be locked again,
// and the lock-acquisition graph over lock *classes* (a struct's mutex field
// is one class across all instances) must be acyclic.
//
// The walker tracks held-lock sets through sequential statement flow —
// branches fork a copy of the set and the fall-through state is the
// intersection of non-terminating branch exits — so unlock-in-branch and
// unlock-then-select patterns (singleflight's flightGroup.do) resolve
// without false positives. Blocking-ness propagates transitively through the
// static call graph only: calls through interfaces and func values are not
// expanded, so a blocking implementation reached solely through an interface
// seam must be caught (and justified) at the implementation's own lock
// sites.
func runLockOrder(cfg *Config, prog *Program) []Diagnostic {
	if len(cfg.LockOrderPkgs) == 0 {
		return nil
	}
	lo := newLockOrder(prog)
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !hasPrefixPath(pkg.ImportPath, cfg.LockOrderPkgs) {
			continue
		}
		for _, body := range funcBodies(pkg) {
			w := &loWalker{lo: lo, pkg: pkg}
			w.walkStmts(body.List, map[string]heldLock{})
			diags = append(diags, w.diags...)
		}
	}
	return append(diags, lo.cycles()...)
}

// heldLock is one currently-held mutex instance: its lock class (the
// declared field or var object) plus the receiver expression that names it.
type heldLock struct {
	class types.Object
	pos   token.Pos
}

// declBody locates one declared function's body for cross-package walks.
type declBody struct {
	pkg  *Package
	body *ast.BlockStmt
}

// lockOrder holds the whole-program state: declared bodies, blocking-ness
// and acquired-lock-class memos, and the lock-order edge graph.
type lockOrder struct {
	prog  *Program
	decls map[*types.Func]*declBody
	// blocking memoises each function's blocking reason ("" = non-blocking);
	// blockVisiting guards recursion.
	blocking      map[*types.Func]string
	blockVisiting map[*types.Func]bool
	// acquires memoises the lock classes a function may acquire anywhere in
	// its static call closure.
	acquires    map[*types.Func]map[types.Object]bool
	acqVisiting map[*types.Func]bool
	// edges[a][b] records the first site that acquired class b while holding
	// class a.
	edges map[types.Object]map[types.Object]token.Pos
}

func newLockOrder(prog *Program) *lockOrder {
	return &lockOrder{
		prog:          prog,
		decls:         declIndex(prog),
		blocking:      make(map[*types.Func]string),
		blockVisiting: make(map[*types.Func]bool),
		acquires:      make(map[*types.Func]map[types.Object]bool),
		acqVisiting:   make(map[*types.Func]bool),
		edges:         make(map[types.Object]map[types.Object]token.Pos),
	}
}

// declIndex maps every declared module function to its body.
func declIndex(prog *Program) map[*types.Func]*declBody {
	idx := make(map[*types.Func]*declBody)
	for _, pkg := range prog.Pkgs {
		for _, fd := range funcDecls(pkg) {
			if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				idx[f] = &declBody{pkg: pkg, body: fd.Body}
			}
		}
	}
	return idx
}

// funcBodies returns every function body in the package: declared functions
// plus each function literal as its own region. A literal's statements run
// on another goroutine or at another time than the enclosing lock region, so
// each is walked independently with an empty held set.
func funcBodies(pkg *Package) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Body != nil {
					out = append(out, node.Body)
				}
			case *ast.FuncLit:
				out = append(out, node.Body)
			}
			return true
		})
	}
	return out
}

// staticCallees resolves one call site to declared functions without
// interface fan-out: interface-method and func-value calls return nil (their
// target is dynamic and not propagated).
func staticCallees(pkg *Package, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []*types.Func{f}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // func-typed field: dynamically dispatched
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // interface method: dynamically dispatched
			}
			return []*types.Func{f}
		}
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{f}
		}
	}
	return nil
}

// mutexClass resolves the receiver of a Lock/Unlock call to the declared
// mutex object (a struct field or package var of type sync.Mutex/RWMutex).
// The field object is the lock *class*: s.shards[i].mu and s.shards[j].mu
// share it.
func mutexClass(pkg *Package, recv ast.Expr) types.Object {
	var obj types.Object
	switch r := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if fs, ok := pkg.Info.Selections[r]; ok && fs.Kind() == types.FieldVal {
			obj = fs.Obj()
		}
	case *ast.Ident:
		obj = pkg.Info.Uses[r]
	}
	if obj == nil || !isMutexType(obj.Type()) {
		return nil
	}
	return obj
}

// blockingReason returns why f blocks ("" when it does not), following
// static calls transitively.
func (lo *lockOrder) blockingReason(f *types.Func) string {
	if r, ok := lo.blocking[f]; ok {
		return r
	}
	if lo.blockVisiting[f] {
		return ""
	}
	db, ok := lo.decls[f]
	if !ok {
		return "" // no body in the module; stdlib primitives are matched at call sites
	}
	lo.blockVisiting[f] = true
	defer delete(lo.blockVisiting, f)
	reason := ""
	ast.Inspect(db.body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs on another goroutine / at another time
		}
		if r, ok := directBlockReason(db.pkg, n); ok {
			reason = r
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, callee := range staticCallees(db.pkg, call) {
				if r := lo.blockingReason(callee); r != "" {
					reason = fmt.Sprintf("call to %s (%s)", callee.Name(), r)
					return false
				}
			}
		}
		return true
	})
	lo.blocking[f] = reason
	return reason
}

// directBlockReason reports whether node n is itself a blocking primitive.
func directBlockReason(pkg *Package, n ast.Node) (string, bool) {
	switch node := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if node.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.SelectStmt:
		for _, c := range node.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // select with default: non-blocking poll
			}
		}
		return "select", true
	case *ast.RangeStmt:
		if tv, ok := pkg.Info.Types[node.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		if path, name, ok := pkgFuncCall(pkg, node); ok {
			switch {
			case path == "time" && name == "Sleep":
				return "time.Sleep", true
			case path == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
				return "net." + name, true
			case path == "net/http" && (strings.HasPrefix(name, "ListenAndServe") || name == "Serve" ||
				name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
				return "http." + name, true
			}
		}
		if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
					rp, rn, m := named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name
					switch {
					case rp == "sync" && rn == "WaitGroup" && m == "Wait":
						return "WaitGroup.Wait", true
					case rp == "sync" && rn == "Cond" && m == "Wait":
						return "Cond.Wait", true
					case rp == "os" && rn == "File" && m == "Sync":
						return "fsync", true
					case rp == "net/http" && rn == "Client" &&
						(m == "Do" || m == "Get" || m == "Post" || m == "PostForm" || m == "Head"):
						return "http.Client round-trip", true
					}
				}
			}
		}
	}
	return "", false
}

// loWalker walks one function body's statements tracking the held-lock set.
type loWalker struct {
	lo    *lockOrder
	pkg   *Package
	diags []Diagnostic
}

func (w *loWalker) report(pos token.Pos, format string, args ...any) {
	w.diags = append(w.diags, Diagnostic{
		Pos:  w.lo.prog.Fset.Position(pos),
		Rule: "lockorder",
		Msg:  fmt.Sprintf(format, args...),
	})
}

// heldNames renders the held set deterministically for messages.
func heldNames(held map[string]heldLock) string {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectHeld keeps only instances held in both maps — the fall-through
// state after a branch.
func intersectHeld(a, b map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// walkStmts processes stmts sequentially, mutating held as Lock/Unlock calls
// appear, and reports blocking operations or re-locks while held is
// non-empty. It returns the fall-through held set and whether control always
// leaves the enclosing block (return/branch).
func (w *loWalker) walkStmts(stmts []ast.Stmt, held map[string]heldLock) (map[string]heldLock, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = w.walkStmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *loWalker) walkStmt(stmt ast.Stmt, held map[string]heldLock) (map[string]heldLock, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if w.lockCall(s.X, held) {
			return held, false
		}
		w.scanBlocking(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock to function exit: the instance
		// simply stays held for the rest of the walk. Any other deferred call
		// is approximated as running under the current held set.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") && mutexClass(w.pkg, sel.X) != nil {
			return held, false
		}
		w.scanBlocking(s.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit this goroutine's held set;
		// its body is walked separately via funcBodies.
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		w.scanBlocking(stmt, held)
		if _, ok := stmt.(*ast.ReturnStmt); ok {
			return held, true
		}
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanBlocking(s.Cond, held)
		bodyOut, bodyTerm := w.walkStmts(s.Body.List, copyHeld(held))
		elseOut, elseTerm := held, false
		if s.Else != nil {
			elseOut, elseTerm = w.walkStmt(s.Else, copyHeld(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, s.Else != nil
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		default:
			return intersectHeld(bodyOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanBlocking(s.Cond, held)
		}
		if s.Post != nil {
			w.scanBlocking(s.Post, held)
		}
		// The body is assumed lock-balanced per iteration: walk it against a
		// copy and keep the pre-loop state as the fall-through.
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if r, ok := directBlockReason(w.pkg, s); ok && len(held) > 0 {
			w.report(s.Pos(), "%s held across %s; a lock must not be held across a blocking operation", heldNames(held), r)
		}
		w.scanBlocking(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanBlocking(s.Tag, held)
		}
		return w.walkClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanBlocking(s.Assign, held)
		return w.walkClauses(s.Body.List, held)
	case *ast.SelectStmt:
		if r, ok := directBlockReason(w.pkg, s); ok && len(held) > 0 {
			w.report(s.Pos(), "%s held across %s; a lock must not be held across a blocking operation", heldNames(held), r)
		}
		return w.walkClauses(s.Body.List, held)
	}
	return held, false
}

// walkClauses walks switch/select clause bodies against forked held sets and
// merges the non-terminating exits (intersection, pre-state included for the
// no-clause-taken path).
func (w *loWalker) walkClauses(clauses []ast.Stmt, held map[string]heldLock) (map[string]heldLock, bool) {
	out := copyHeld(held)
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scanBlocking(e, held)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				_, _ = w.walkStmt(cc.Comm, copyHeld(held))
			}
			body = cc.Body
		}
		if clauseOut, term := w.walkStmts(body, copyHeld(held)); !term {
			out = intersectHeld(out, clauseOut)
		}
	}
	return out, false
}

// lockCall handles mu.Lock/RLock/Unlock/RUnlock expression statements,
// updating held and the lock-order edge graph. It reports double-locks of
// one instance and records class edges for every lock acquired while others
// are held.
func (w *loWalker) lockCall(expr ast.Expr, held map[string]heldLock) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return false
	}
	class := mutexClass(w.pkg, sel.X)
	if class == nil {
		return false
	}
	key := types.ExprString(sel.X)
	switch name {
	case "Lock", "RLock":
		if _, dup := held[key]; dup {
			w.report(call.Pos(), "%s locked while already held (deadlock)", key)
			return true
		}
		for _, h := range held {
			if h.class != class {
				w.lo.addEdge(h.class, class, call.Pos())
			}
		}
		held[key] = heldLock{class: class, pos: call.Pos()}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// scanBlocking reports blocking primitives and calls to (transitively)
// blocking functions inside node while held is non-empty, and records
// lock-order edges for lock classes acquired inside callees.
func (w *loWalker) scanBlocking(node ast.Node, held map[string]heldLock) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if r, ok := directBlockReason(w.pkg, n); ok {
			w.report(n.Pos(), "%s held across %s; a lock must not be held across a blocking operation", heldNames(held), r)
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, callee := range staticCallees(w.pkg, call) {
				if r := w.lo.blockingReason(callee); r != "" {
					w.report(call.Pos(), "%s held across call to %s, which blocks (%s)", heldNames(held), callee.Name(), r)
				}
				for class := range w.lo.acquiresOf(callee) {
					for _, h := range held {
						if h.class != class {
							w.lo.addEdge(h.class, class, call.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

// acquiresOf returns the lock classes f may acquire anywhere in its static
// call closure (memoised).
func (lo *lockOrder) acquiresOf(f *types.Func) map[types.Object]bool {
	if acq, ok := lo.acquires[f]; ok {
		return acq
	}
	if lo.acqVisiting[f] {
		return nil
	}
	db, ok := lo.decls[f]
	if !ok {
		return nil
	}
	lo.acqVisiting[f] = true
	defer delete(lo.acqVisiting, f)
	acq := make(map[types.Object]bool)
	ast.Inspect(db.body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			if class := mutexClass(db.pkg, sel.X); class != nil {
				acq[class] = true
				return true
			}
		}
		for _, callee := range staticCallees(db.pkg, call) {
			for class := range lo.acquiresOf(callee) {
				acq[class] = true
			}
		}
		return true
	})
	lo.acquires[f] = acq
	return acq
}

func (lo *lockOrder) addEdge(from, to types.Object, pos token.Pos) {
	if lo.edges[from] == nil {
		lo.edges[from] = make(map[types.Object]token.Pos)
	}
	if _, ok := lo.edges[from][to]; !ok {
		lo.edges[from][to] = pos
	}
}

// cycles reports each cycle in the lock-class order graph once, at the edge
// that closes it.
func (lo *lockOrder) cycles() []Diagnostic {
	classKey := func(o types.Object) string {
		p := lo.prog.Fset.Position(o.Pos())
		return fmt.Sprintf("%s:%d:%s", filepath.Base(p.Filename), p.Line, o.Name())
	}
	nodes := make([]types.Object, 0, len(lo.edges))
	for n := range lo.edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return classKey(nodes[i]) < classKey(nodes[j]) })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[types.Object]int)
	var stack []types.Object
	seen := make(map[string]bool)
	var diags []Diagnostic

	var visit func(n types.Object)
	visit = func(n types.Object) {
		color[n] = grey
		stack = append(stack, n)
		succs := make([]types.Object, 0, len(lo.edges[n]))
		for s := range lo.edges[n] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return classKey(succs[i]) < classKey(succs[j]) })
		for _, s := range succs {
			switch color[s] {
			case white:
				visit(s)
			case grey:
				// Back edge n→s closes a cycle s ... n s.
				start := 0
				for i, m := range stack {
					if m == s {
						start = i
						break
					}
				}
				cycle := append(append([]types.Object{}, stack[start:]...), s)
				keys := make([]string, len(cycle)-1)
				names := make([]string, len(cycle))
				for i, m := range cycle {
					names[i] = m.Name()
					if i < len(keys) {
						keys[i] = classKey(m)
					}
				}
				sort.Strings(keys)
				canon := strings.Join(keys, "|")
				if !seen[canon] {
					seen[canon] = true
					diags = append(diags, Diagnostic{
						Pos:  lo.prog.Fset.Position(lo.edges[n][s]),
						Rule: "lockorder",
						Msg: fmt.Sprintf("lock-order cycle: %s; acquire these mutexes in one global order",
							strings.Join(names, " -> ")),
					})
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return diags
}
